"""The F-rule family: flow invariants checked by the dataflow engine.

Each taint rule (F1, F2, F5) contributes a :class:`FlowConfig` fragment —
sources, sanitizers, sinks — and reads back the hits the engine collected
for its rule id.  The structural rules (F3, F4) do not use taint at all:
they ask guard-*reachability* questions over the same call graph ("can this
public batched entry point ever observe the fault plan / the hook?").

All five run a single shared project analysis, memoized on the
:class:`~repro.lint.core.Project`, so ``--deep`` pays the fixed-point cost
once no matter how many rules are selected.
"""

import ast
from collections.abc import Iterator

from repro.lint.core import Module, Project, Rule, dotted_name, register
from repro.lint.flow.callgraph import FunctionInfo
from repro.lint.flow.lattice import (
    COUNTER,
    COUNTER_DEC,
    MASTER_KEY,
    PLAINTEXT,
    TENANT_KEY,
    FlowConfig,
    SanitizerSpec,
    SinkSpec,
    SourceSpec,
    StoreSinkSpec,
    merge_configs,
)
from repro.lint.flow.summaries import FlowAnalysis, analyze_project


def _is_property(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for decorator in node.decorator_list:
        name = dotted_name(decorator)
        if name and name.split(".")[-1] in ("property", "cached_property"):
            return True
    return False


class FlowRule(Rule):
    """Base for deep rules: shares one memoized project analysis."""

    deep = True
    flow_config = FlowConfig()

    def analysis(self, project: Project) -> FlowAnalysis:
        result = project.cached("flow.analysis",
                                lambda: _compute_analysis(project))
        assert isinstance(result, FlowAnalysis)
        return result

    def check(self, module: Module, project: Project) -> Iterator:
        analysis = self.analysis(project)
        for hit in analysis.hits_for_module(module):
            if hit.rule == self.name:
                yield module.finding(self, hit.node, hit.message)

    @staticmethod
    def _module_functions(analysis: FlowAnalysis,
                          module: Module) -> list[FunctionInfo]:
        return [info for info in analysis.graph.functions.values()
                if info.module.relpath == module.relpath]

    @staticmethod
    def _class_attr_writes(analysis: FlowAnalysis, module: Module,
                           class_name: str) -> set[str]:
        writes: set[str] = set()
        for info in analysis.graph.functions.values():
            if info.class_name == class_name \
                    and info.module.relpath == module.relpath:
                writes.update(info.attr_writes)
        return writes


def _compute_analysis(project: Project) -> FlowAnalysis:
    modules = [m for m in project.modules
               if m.module == "repro" or m.module.startswith("repro.")]
    config = merge_configs([rule.flow_config for rule in RULES_FLOW])
    return analyze_project(project, modules, config)


_F1_TREE_MSG = (
    "tenant-derived key material reaches a master-keyed MAC domain "
    "(MacDomain.NODE/CHV_LEVEL2); the integrity tree must stay under the "
    "controller master key so shard splicing is detected")
_F1_DATA_MSG = (
    "raw master key material reaches a tenant data-path crypto call; "
    "resolve keys through TenantKeyring.aes_key()/mac_key() so per-tenant "
    "isolation holds")
_F2_MSG = (
    "decrypt output reaches a raw NVM backend write without re-encryption; "
    "plaintext persisted to NVM survives power-off and defeats memory "
    "encryption")
_F5_STORE_MSG = (
    "a decremented counter value is written back into counter-block state; "
    "encryption counters must be monotonic or pad reuse becomes possible")
_F5_CTOR_MSG = (
    "a decremented counter value is persisted via counter/metadata "
    "construction; encryption counters must be monotonic or pad reuse "
    "becomes possible")


@register
class RuleF1(FlowRule):
    """Tenant and master key domains must not cross."""

    name = "F1"
    title = "key-domain taint: tenant keys and master keys must not cross"
    rationale = (
        "PR 8's isolation guarantee is a flow property: data-path crypto is "
        "tenant-keyed, the integrity tree is master-keyed. A value derived "
        "from TenantKeyring/TenantKeySchedule reaching a NODE/CHV_LEVEL2 "
        "MAC site (or a raw master key reaching sharded data-path crypto) "
        "silently collapses the two trust domains.")
    scope = ("repro",)

    flow_config = FlowConfig(
        sources=(
            # Blessed resolution APIs are *overrides*: their results carry
            # exactly the tenant label no matter what master material fed
            # them (TenantKeyring.aes_key derives from aes_master by design).
            SourceSpec("call", frozenset({
                "derive_tenant_key", "aes_key", "mac_key"}), TENANT_KEY),
            SourceSpec("attr", frozenset({
                "aes_master", "mac_master"}), MASTER_KEY),
        ),
        sinks=(
            SinkSpec(
                rule="F1",
                callee_names=frozenset({"compute_mac", "compute_macs"}),
                arg_positions=(0,),
                kwarg_names=("key",),
                labels=frozenset({TENANT_KEY}),
                keyword_equals=("domain", "MacDomain",
                                frozenset({"NODE", "CHV_LEVEL2"})),
                message=_F1_TREE_MSG),
            SinkSpec(
                rule="F1",
                callee_names=frozenset({
                    "encrypt_block", "decrypt_block", "encrypt_blocks",
                    "decrypt_blocks", "compute_block_macs", "block_mac"}),
                arg_positions=(0,),
                kwarg_names=("key",),
                labels=frozenset({MASTER_KEY}),
                module_prefixes=("repro.sharding",),
                message=_F1_DATA_MSG),
        ),
    )


@register
class RuleF2(FlowRule):
    """Decrypted plaintext must not reach a raw NVM backend write."""

    name = "F2"
    title = "plaintext escape: decrypt outputs must be re-encrypted " \
            "before any NVM backend write"
    rationale = (
        "NVM persists across power-off, so one plaintext write is a "
        "permanent leak (the persistence-based attack surface). Every "
        "decrypt output must pass an encrypt/MAC/pad sanitizer before "
        "reaching NvmDevice/SparseMemory write entry points.")
    scope = ("repro",)

    flow_config = FlowConfig(
        sources=(
            SourceSpec("call", frozenset({
                "decrypt", "decrypt_batch", "decrypt_block",
                "decrypt_blocks", "decrypt_arena"}), PLAINTEXT),
        ),
        sanitizers=(
            SanitizerSpec(frozenset({
                "encrypt", "encrypt_batch", "encrypt_block",
                "encrypt_blocks", "encrypt_arena",
                "compute_mac", "compute_macs", "compute_block_macs",
                "block_mac", "digest_mac",
                "xor_bytes", "xor_block", "xor_buffers",
                "generate_pad", "generate_pads",
                "sha256", "blake2b"}), frozenset({PLAINTEXT})),
        ),
        sinks=(
            SinkSpec(
                rule="F2",
                callee_names=frozenset({
                    "write", "write_block", "write_arena", "poke"}),
                arg_positions=(1,),
                kwarg_names=("data", "buffer"),
                labels=frozenset({PLAINTEXT}),
                receivers=frozenset({
                    "nvm", "_nvm", "backend", "_backend",
                    "device", "_device"}),
                message=_F2_MSG),
            SinkSpec(
                rule="F2",
                callee_names=frozenset({"write_batch", "write_blocks"}),
                arg_positions=(0,),
                kwarg_names=("items", "blocks"),
                labels=frozenset({PLAINTEXT}),
                receivers=frozenset({
                    "nvm", "_nvm", "backend", "_backend",
                    "device", "_device"}),
                message=_F2_MSG),
        ),
    )


@register
class RuleF3(FlowRule):
    """Grouped backend paths must observe the scalar-degradation guards."""

    name = "F3"
    title = "fault-plan parity: grouped backend methods must reach the " \
            "scalar-degradation guard"
    rationale = (
        "PR 7's arena contract: batched/grouped NVM entry points must "
        "degrade to the scalar path whenever a fault plan, wear model, or "
        "trace is active, or fault injection silently misses grouped I/O. "
        "Checked structurally: every public *_batch/*_blocks/*_arena "
        "method on a fault-plan-bearing class must (transitively) read one "
        "of the guard attributes.")
    scope = ("repro.mem",)

    GUARDS = frozenset({"fault_plan", "wear", "trace", "grouped_io"})
    SUFFIXES = ("_batch", "_blocks", "_arena")

    def check(self, module: Module, project: Project) -> Iterator:
        analysis = self.analysis(project)
        for info in self._module_functions(analysis, module):
            if info.class_name is None or not info.is_public:
                continue
            if not info.name.endswith(self.SUFFIXES):
                continue
            if _is_property(info.node):
                continue
            owns = self._class_attr_writes(analysis, module, info.class_name)
            if "fault_plan" not in owns:
                continue
            reads = analysis.transitive_attr_reads(info.qualname)
            if not reads & self.GUARDS:
                yield module.finding(self, info.node, (
                    f"grouped method {info.class_name}.{info.name}() never "
                    f"consults the scalar-degradation guards "
                    f"(fault_plan/wear/trace/grouped_io); batched I/O would "
                    f"bypass fault injection and wear accounting"))


@register
class RuleF4(FlowRule):
    """Hook injection windows must force the scalar path."""

    name = "F4"
    title = "hook forced-scalar: op_hook/step_hook windows must not " \
            "enter batched paths"
    rationale = (
        "PR 6's contract: adversarial hooks (op_hook, step_hook) fire "
        "between scalar steps, so any public entry point that can reach a "
        "batched fast path must first check that no hook is armed. "
        "Checked structurally on hook-bearing classes: batch-suffixed "
        "public methods, and public methods directly dispatching to a "
        "*_batched sibling, must (transitively) read the hook attribute.")
    scope = ("repro",)

    HOOKS = frozenset({"op_hook", "step_hook"})
    BATCH_SUFFIXES = ("_batch", "_batched", "_blocks", "_arena")

    def check(self, module: Module, project: Project) -> Iterator:
        analysis = self.analysis(project)
        for info in self._module_functions(analysis, module):
            if info.class_name is None or not info.is_public:
                continue
            if _is_property(info.node):
                continue
            hooks = self.HOOKS & self._class_attr_writes(
                analysis, module, info.class_name)
            if not hooks:
                continue
            direct = {analysis.graph.functions[callee].name
                      for callee in analysis.graph.self_callees
                      .get(info.qualname, ())
                      if callee in analysis.graph.functions}
            enters_batched = (
                info.name.endswith(self.BATCH_SUFFIXES)
                or any(name.endswith(("_batch", "_batched"))
                       for name in direct if name != info.name))
            if not enters_batched:
                continue
            if not analysis.transitive_attr_reads(info.qualname) & hooks:
                hook_list = "/".join(sorted(hooks))
                yield module.finding(self, info.node, (
                    f"{info.class_name}.{info.name}() enters a batched "
                    f"path without consulting {hook_list}; armed hooks "
                    f"must force the scalar path so injection windows are "
                    f"not skipped"))


@register
class RuleF5(FlowRule):
    """Counters read from metadata state must not be written back lower."""

    name = "F5"
    title = "counter monotonicity: no decremented counter write-back"
    rationale = (
        "Counter-mode encryption is only safe while counters never repeat. "
        "A counter read from a SplitCounterBlock or metadata cache line "
        "that goes through a subtraction must not be stored back into "
        "counter-block state or persisted through metadata constructors — "
        "that is pad reuse.")
    scope = ("repro",)

    flow_config = FlowConfig(
        sources=(
            SourceSpec("call", frozenset({"counter_for"}), COUNTER),
            SourceSpec("attr", frozenset({"minors", "major"}), COUNTER),
        ),
        sinks=(
            SinkSpec(
                rule="F5",
                callee_names=frozenset({"SplitCounterBlock"}),
                arg_positions=(0, 1),
                kwarg_names=("major", "minors"),
                labels=frozenset({COUNTER_DEC}),
                message=_F5_CTOR_MSG),
            SinkSpec(
                rule="F5",
                callee_names=frozenset({"MetaLine"}),
                arg_positions=(1,),
                kwarg_names=("value",),
                labels=frozenset({COUNTER_DEC}),
                message=_F5_CTOR_MSG),
        ),
        store_sinks=(
            StoreSinkSpec(
                rule="F5",
                attr_names=frozenset({"minors", "major"}),
                labels=frozenset({COUNTER_DEC}),
                message=_F5_STORE_MSG),
        ),
    )


RULES_FLOW: tuple[FlowRule, ...] = (
    RuleF1(), RuleF2(), RuleF3(), RuleF4(), RuleF5())
