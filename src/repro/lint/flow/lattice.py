"""The taint lattice and the declarative flow-rule configuration model.

A taint is a ``frozenset`` of string labels; joins are set unions, so the
lattice is the powerset of the label alphabet ordered by inclusion.  Two
alphabets coexist:

* *semantic* labels (:data:`TENANT_KEY`, :data:`PLAINTEXT`, ...) introduced
  by :class:`SourceSpec` matches and consumed by :class:`SinkSpec` /
  :class:`StoreSinkSpec` matches; and
* *parameter placeholders* (``@p0``, ``@p1``, ...) seeded on every function
  parameter so one intraprocedural pass doubles as the function's summary:
  a placeholder surviving to the return value means the parameter flows to
  the return, a placeholder reaching a sink means callers passing tainted
  arguments reach that sink.

Sanitizers *remove* labels: a value returned by an ``encrypt*`` call no
longer carries :data:`PLAINTEXT` no matter how tainted its inputs were.
"""

from dataclasses import dataclass

Taint = frozenset[str]

EMPTY: Taint = frozenset()

TENANT_KEY = "tenant-key"
"""Key material derived for one tenant (F1)."""

MASTER_KEY = "master-key"
"""The controller's raw master key material (F1)."""

PLAINTEXT = "plaintext"
"""Output of a decrypt path that has not been re-encrypted (F2)."""

COUNTER = "counter"
"""An encryption counter read from metadata state (F5)."""

COUNTER_DEC = "counter-decremented"
"""A counter value that went through a subtraction (F5)."""

_PARAM_PREFIX = "@p"


def param_label(index: int) -> str:
    """The placeholder label seeded on parameter ``index``."""
    return f"{_PARAM_PREFIX}{index}"


def is_param_label(label: str) -> bool:
    return label.startswith(_PARAM_PREFIX)


def param_index(label: str) -> int:
    return int(label[len(_PARAM_PREFIX):])


def semantic(taint: Taint) -> Taint:
    """The taint with parameter placeholders removed."""
    return frozenset(label for label in taint if not is_param_label(label))


def params_in(taint: Taint) -> frozenset[int]:
    """Indices of every parameter placeholder present in ``taint``."""
    return frozenset(param_index(label) for label in taint
                     if is_param_label(label))


@dataclass(frozen=True)
class SourceSpec:
    """Introduce ``label`` at matching expressions.

    ``kind`` selects the syntactic shape: ``"call"`` matches call results by
    callee name (the last attribute segment), ``"attr"`` matches attribute
    loads by attribute name, ``"name"`` matches bare name loads.  A
    ``"call"`` source is an *override*: the call result carries exactly the
    source label (the blessed resolution APIs launder whatever fed them).
    """

    kind: str
    names: frozenset[str]
    label: str


@dataclass(frozen=True)
class SanitizerSpec:
    """Calls whose results shed ``strips`` labels."""

    names: frozenset[str]
    strips: Taint


@dataclass(frozen=True)
class SinkSpec:
    """A call-shaped sink: taint must not reach the listed arguments.

    ``arg_positions`` index positional arguments (after any receiver),
    ``kwarg_names`` match keyword arguments.  Optional filters narrow the
    match: ``receivers`` restricts to calls whose receiver expression ends
    in one of the given attribute/variable names (``self.nvm.write`` ends in
    ``nvm``); ``keyword_equals`` requires a keyword argument to be a
    ``<base>.<member>`` attribute with the member in the given set (the
    ``domain=MacDomain.NODE`` shape); ``module_prefixes`` restricts the
    sink to call sites inside the given dotted-module prefixes.
    """

    rule: str
    callee_names: frozenset[str]
    arg_positions: tuple[int, ...]
    message: str
    labels: Taint
    kwarg_names: tuple[str, ...] = ()
    receivers: frozenset[str] = frozenset()
    keyword_equals: tuple[str, str, frozenset[str]] | None = None
    module_prefixes: tuple[str, ...] = ()


@dataclass(frozen=True)
class StoreSinkSpec:
    """An assignment-shaped sink: taint must not be stored into the named
    attributes (``obj.major = x``) or their elements (``obj.minors[i] = x``).
    """

    rule: str
    attr_names: frozenset[str]
    message: str
    labels: Taint


@dataclass(frozen=True)
class FlowConfig:
    """Everything the engine needs to know, merged over the active rules."""

    sources: tuple[SourceSpec, ...] = ()
    sanitizers: tuple[SanitizerSpec, ...] = ()
    sinks: tuple[SinkSpec, ...] = ()
    store_sinks: tuple[StoreSinkSpec, ...] = ()

    def call_sources(self) -> dict[str, str]:
        table: dict[str, str] = {}
        for spec in self.sources:
            if spec.kind == "call":
                for name in spec.names:
                    table[name] = spec.label
        return table

    def attr_sources(self) -> dict[str, str]:
        table: dict[str, str] = {}
        for spec in self.sources:
            if spec.kind == "attr":
                for name in spec.names:
                    table[name] = spec.label
        return table

    def name_sources(self) -> dict[str, str]:
        table: dict[str, str] = {}
        for spec in self.sources:
            if spec.kind == "name":
                for name in spec.names:
                    table[name] = spec.label
        return table

    def sanitizer_table(self) -> dict[str, Taint]:
        table: dict[str, Taint] = {}
        for spec in self.sanitizers:
            for name in spec.names:
                table[name] = table.get(name, EMPTY) | spec.strips
        return table

    def sinks_by_name(self) -> dict[str, tuple[SinkSpec, ...]]:
        table: dict[str, list[SinkSpec]] = {}
        for spec in self.sinks:
            for name in spec.callee_names:
                table.setdefault(name, []).append(spec)
        return {name: tuple(specs) for name, specs in table.items()}


def merge_configs(configs: "list[FlowConfig]") -> FlowConfig:
    """Union the per-rule configurations into one engine configuration."""
    return FlowConfig(
        sources=tuple(s for c in configs for s in c.sources),
        sanitizers=tuple(s for c in configs for s in c.sanitizers),
        sinks=tuple(s for c in configs for s in c.sinks),
        store_sinks=tuple(s for c in configs for s in c.store_sinks),
    )
