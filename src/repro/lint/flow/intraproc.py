"""Intraprocedural def-use taint propagation over one function body.

The evaluator walks statements in source order (twice, so taint assigned
late in a loop body still reaches uses earlier in the next iteration),
maintaining a ``variable -> taint`` environment.  Parameters are seeded
with placeholder labels (:func:`repro.lint.flow.lattice.param_label`), so
the same pass yields the function's interprocedural summary: placeholders
surviving into the return value are parameter passthroughs, placeholders
reaching a sink are parameter-dependent sink paths, and a ``@d<i>`` marker
records that parameter ``i`` went through a subtraction on its way to the
return value (the F5 decrement step).

Assignments are strong updates — ``x = encrypt(x)`` kills ``x``'s old
taint — which trades a little soundness at branch joins for the precision
a lint gate needs to stay quiet on correct code.
"""

import ast
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.lint.flow.callgraph import CallGraph, FunctionInfo
from repro.lint.flow.lattice import (
    COUNTER,
    COUNTER_DEC,
    EMPTY,
    FlowConfig,
    Taint,
    is_param_label,
    param_index,
    param_label,
)

_DEC_PREFIX = "@d"

_STRIP_BUILTINS = frozenset({
    "len", "isinstance", "issubclass", "hasattr", "callable", "id",
    "ord", "bool", "range", "print",
})


def _dec_label(index: int) -> str:
    return f"{_DEC_PREFIX}{index}"


def _is_dec_label(label: str) -> bool:
    return label.startswith(_DEC_PREFIX)


def _dec_index(label: str) -> int:
    return int(label[len(_DEC_PREFIX):])


@dataclass
class Hit:
    """One sink reached by tainted data, anchored at an AST node."""

    rule: str
    node: ast.AST
    message: str
    function: str


@dataclass
class IntraResult:
    """Everything one function pass learned."""

    qualname: str
    return_taint: Taint = EMPTY
    hits: list[Hit] = field(default_factory=list)
    param_sinks: dict[int, set[tuple[str, str]]] = field(default_factory=dict)
    sink_labels: dict[tuple[str, str], Taint] = field(default_factory=dict)
    attr_reads: set[str] = field(default_factory=set)

    @property
    def passthrough(self) -> frozenset[int]:
        return frozenset(param_index(label) for label in self.return_taint
                         if is_param_label(label))

    @property
    def decrements(self) -> frozenset[int]:
        return frozenset(_dec_index(label) for label in self.return_taint
                         if _is_dec_label(label))

    @property
    def semantic_return(self) -> Taint:
        return frozenset(label for label in self.return_taint
                         if not is_param_label(label)
                         and not _is_dec_label(label))


class FunctionEvaluator:
    """One intraprocedural pass over ``info`` under ``config``."""

    def __init__(self, info: FunctionInfo, config: FlowConfig,
                 graph: CallGraph, summaries: Mapping[str, Any]):
        self.info = info
        self.config = config
        self.graph = graph
        self.summaries = summaries
        self.call_sources = config.call_sources()
        self.attr_sources = config.attr_sources()
        self.name_sources = config.name_sources()
        self.sanitizers = config.sanitizer_table()
        self.sinks = config.sinks_by_name()
        self.env: dict[str, Taint] = {}
        self.self_attrs: dict[str, Taint] = {}
        self.result = IntraResult(qualname=info.qualname)
        self._hit_keys: set[tuple[str, int]] = set()
        self._param_sink_labels = self.result.sink_labels

    def run(self) -> IntraResult:
        for index, name in enumerate(self.info.params):
            self.env[name] = frozenset({param_label(index)})
        body = list(self.info.node.body)
        for _ in range(2):
            for statement in body:
                self._stmt(statement)
        return self.result

    # -- statements ---------------------------------------------------------

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            taint = self._eval(node.value)
            for target in node.targets:
                self._assign(target, taint)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._assign(node.target, self._eval(node.value))
        elif isinstance(node, ast.AugAssign):
            left = self._target_taint(node.target)
            right = self._eval(node.value)
            taint = left | right
            if isinstance(node.op, ast.Sub):
                taint |= self._decrement_markers(left)
            self._assign(node.target, taint)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self.result.return_taint |= self._eval(node.value)
        elif isinstance(node, (ast.Expr, ast.Await)):
            self._eval(node.value)
        elif isinstance(node, ast.For):
            self._assign(node.target, self._eval(node.iter))
            for child in node.body + node.orelse:
                self._stmt(child)
        elif isinstance(node, ast.AsyncFor):
            self._assign(node.target, self._eval(node.iter))
            for child in node.body + node.orelse:
                self._stmt(child)
        elif isinstance(node, (ast.While, ast.If)):
            self._eval(node.test)
            for child in node.body + node.orelse:
                self._stmt(child)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                taint = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, taint)
            for child in node.body:
                self._stmt(child)
        elif isinstance(node, ast.Try):
            for child in (node.body + node.orelse + node.finalbody):
                self._stmt(child)
            for handler in node.handlers:
                for child in handler.body:
                    self._stmt(child)
        elif isinstance(node, (ast.Raise, ast.Assert)):
            for value in ast.iter_child_nodes(node):
                if isinstance(value, ast.expr):
                    self._eval(value)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        # Nested function/class definitions are analyzed as their own
        # functions (when collected); their bodies are not merged here.

    def _target_taint(self, target: ast.expr) -> Taint:
        if isinstance(target, ast.Name):
            return self.env.get(target.id, EMPTY)
        return self._eval(target)

    def _assign(self, target: ast.expr, taint: Taint) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = taint
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                inner = element.value if isinstance(element, ast.Starred) \
                    else element
                self._assign(inner, taint)
        elif isinstance(target, ast.Attribute):
            self._check_store(target, target.attr, taint)
            if isinstance(target.value, ast.Name) \
                    and target.value.id == "self":
                self.self_attrs[target.attr] = taint
        elif isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Attribute):
                self._check_store(target, base.attr, taint)
            if isinstance(base, ast.Name):
                # weak update: the container now may hold the taint
                self.env[base.id] = self.env.get(base.id, EMPTY) | taint

    def _check_store(self, node: ast.expr, attr: str, taint: Taint) -> None:
        for spec in self.config.store_sinks:
            if attr in spec.attr_names and taint & spec.labels:
                self._record_hit(spec.rule, node, spec.message)

    # -- expressions --------------------------------------------------------

    def _eval(self, node: ast.expr | None) -> Taint:
        if node is None:
            return EMPTY
        if isinstance(node, ast.Name):
            taint = self.env.get(node.id, EMPTY)
            label = self.name_sources.get(node.id)
            if label is not None:
                taint |= {label}
            return taint
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) \
                    and node.value.id == "self":
                self.result.attr_reads.add(node.attr)
            taint = self._eval(node.value)
            if isinstance(node.value, ast.Name) \
                    and node.value.id == "self":
                taint |= self.self_attrs.get(node.attr, EMPTY)
            label = self.attr_sources.get(node.attr)
            if label is not None:
                taint |= {label}
            return taint
        if isinstance(node, ast.Subscript):
            return self._eval(node.value) | self._eval(node.slice)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left)
            right = self._eval(node.right)
            taint = left | right
            if isinstance(node.op, ast.Sub):
                taint |= self._decrement_markers(left)
            return taint
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.BoolOp):
            out = EMPTY
            for value in node.values:
                out |= self._eval(value)
            return out
        if isinstance(node, ast.Compare):
            self._eval(node.left)
            for comparator in node.comparators:
                self._eval(comparator)
            return EMPTY
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return self._eval(node.body) | self._eval(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = EMPTY
            for element in node.elts:
                out |= self._eval(element)
            return out
        if isinstance(node, ast.Dict):
            out = EMPTY
            for key in node.keys:
                if key is not None:
                    out |= self._eval(key)
            for value in node.values:
                out |= self._eval(value)
            return out
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            self._bind_comprehensions(node.generators)
            return self._eval(node.elt)
        if isinstance(node, ast.DictComp):
            self._bind_comprehensions(node.generators)
            return self._eval(node.key) | self._eval(node.value)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.JoinedStr):
            out = EMPTY
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out |= self._eval(value.value)
            return out
        if isinstance(node, ast.FormattedValue):
            return self._eval(node.value)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self._eval(node.value)
        if isinstance(node, ast.Yield):
            taint = self._eval(node.value)
            self.result.return_taint |= taint
            return EMPTY
        if isinstance(node, ast.NamedExpr):
            taint = self._eval(node.value)
            self._assign(node.target, taint)
            return taint
        if isinstance(node, ast.Lambda):
            return EMPTY
        if isinstance(node, ast.Slice):
            self._eval(node.lower)
            self._eval(node.upper)
            self._eval(node.step)
            return EMPTY
        return EMPTY

    def _bind_comprehensions(self,
                             generators: list[ast.comprehension]) -> None:
        for comp in generators:
            self._assign(comp.target, self._eval(comp.iter))
            for condition in comp.ifs:
                self._eval(condition)

    def _decrement_markers(self, left: Taint) -> Taint:
        markers = set()
        if COUNTER in left:
            markers.add(COUNTER_DEC)
        for label in left:
            if is_param_label(label):
                markers.add(_dec_label(param_index(label)))
        return frozenset(markers)

    # -- calls --------------------------------------------------------------

    def _call(self, node: ast.Call) -> Taint:
        func = node.func
        callee_name: str | None = None
        receiver_taint = EMPTY
        if isinstance(func, ast.Attribute):
            callee_name = func.attr
            receiver_taint = self._eval(func.value)
        elif isinstance(func, ast.Name):
            callee_name = func.id
            label = self.name_sources.get(func.id)
            if label is not None:
                receiver_taint |= {label}
        else:
            self._eval(func)

        has_starred = any(isinstance(arg, ast.Starred) for arg in node.args)
        arg_taints = [self._eval(arg) for arg in node.args]
        kwarg_taints = {kw.arg: self._eval(kw.value) for kw in node.keywords}

        if callee_name is not None:
            self._check_sinks(node, callee_name, arg_taints, kwarg_taints,
                              has_starred)

        # -- result taint ---------------------------------------------------
        if callee_name in self.call_sources:
            return frozenset({self.call_sources[callee_name]})

        union = receiver_taint
        for taint in arg_taints:
            union |= taint
        for taint in kwarg_taints.values():
            union |= taint

        strips = self.sanitizers.get(callee_name or "")
        if strips is not None:
            return union - strips

        if callee_name in _STRIP_BUILTINS and isinstance(func, ast.Name):
            return EMPTY

        callees = self.graph.resolve_call(node, self.info) \
            if callee_name is not None else []
        if not callees:
            return union

        out = EMPTY
        for callee in callees:
            out |= self._apply_summary(node, callee, arg_taints,
                                       kwarg_taints, has_starred,
                                       bound=isinstance(func, ast.Attribute))
        return out

    def _map_args(self, callee: FunctionInfo, arg_taints: list[Taint],
                  kwarg_taints: dict[str | None, Taint],
                  bound: bool) -> dict[int, Taint]:
        """Call-site taints keyed by callee parameter index."""
        mapping: dict[int, Taint] = {}
        offset = 0 if (bound or not callee.has_self) else 1
        for position, taint in enumerate(arg_taints):
            index = position - offset
            if 0 <= index < len(callee.params):
                mapping[index] = mapping.get(index, EMPTY) | taint
        names = {name: index for index, name in enumerate(callee.params)}
        for name, taint in kwarg_taints.items():
            if name is not None and name in names:
                index = names[name]
                mapping[index] = mapping.get(index, EMPTY) | taint
        return mapping

    def _apply_summary(self, node: ast.Call, callee: FunctionInfo,
                       arg_taints: list[Taint],
                       kwarg_taints: dict[str | None, Taint],
                       has_starred: bool, bound: bool) -> Taint:
        summary = self.summaries.get(callee.qualname)
        if summary is None or has_starred:
            out = EMPTY
            for taint in arg_taints:
                out |= taint
            for taint in kwarg_taints.values():
                out |= taint
            return out
        mapping = self._map_args(callee, arg_taints, kwarg_taints, bound)
        out = set(summary.returns)
        for index in summary.passthrough:
            out.update(mapping.get(index, EMPTY))
        for index in summary.decrements:
            taint = mapping.get(index, EMPTY)
            if COUNTER in taint:
                out.add(COUNTER_DEC)
            for label in taint:
                if is_param_label(label):
                    out.add(_dec_label(param_index(label)))
        # parameter-dependent sinks inside the callee: a tainted argument
        # entering such a parameter is a finding at *this* call site.
        for index, sinks in summary.param_sinks.items():
            taint = mapping.get(index, EMPTY)
            for rule, message in sinks:
                semantic_labels = {label for label in taint
                                   if not is_param_label(label)
                                   and not _is_dec_label(label)}
                if semantic_labels & summary.sink_labels.get((rule, message),
                                                             EMPTY):
                    self._record_hit(rule, node, (
                        f"{message} (via call to {callee.name}())"))
                for label in taint:
                    if is_param_label(label):
                        self._note_param_sink(param_index(label), rule,
                                              message, summary.sink_labels
                                              .get((rule, message), EMPTY))
        return frozenset(out)

    # -- sinks --------------------------------------------------------------

    def _check_sinks(self, node: ast.Call, callee_name: str,
                     arg_taints: list[Taint],
                     kwarg_taints: dict[str | None, Taint],
                     has_starred: bool) -> None:
        specs = self.sinks.get(callee_name)
        if not specs or has_starred:
            return
        for spec in specs:
            if spec.module_prefixes and not any(
                    self.info.module.module == prefix
                    or self.info.module.module.startswith(prefix + ".")
                    for prefix in spec.module_prefixes):
                continue
            if spec.receivers and not self._receiver_matches(node,
                                                             spec.receivers):
                continue
            if spec.keyword_equals is not None \
                    and not self._keyword_matches(node, spec.keyword_equals):
                continue
            observed = EMPTY
            for position in spec.arg_positions:
                if position < len(arg_taints):
                    observed |= arg_taints[position]
            for name in spec.kwarg_names:
                observed |= kwarg_taints.get(name, EMPTY)
            if observed & spec.labels:
                self._record_hit(spec.rule, node, spec.message)
            for label in observed:
                if is_param_label(label):
                    self._note_param_sink(param_index(label), spec.rule,
                                          spec.message, spec.labels)

    @staticmethod
    def _receiver_matches(node: ast.Call,
                          receivers: frozenset[str]) -> bool:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return False
        value = func.value
        if isinstance(value, ast.Attribute):
            return value.attr in receivers
        if isinstance(value, ast.Name):
            return value.id in receivers
        return False

    @staticmethod
    def _keyword_matches(node: ast.Call,
                         condition: tuple[str, str, frozenset[str]]) -> bool:
        kwarg_name, base, members = condition
        for keyword in node.keywords:
            if keyword.arg != kwarg_name:
                continue
            value = keyword.value
            if isinstance(value, ast.Attribute) \
                    and isinstance(value.value, ast.Name) \
                    and value.value.id == base:
                return value.attr in members
        return False

    def _note_param_sink(self, index: int, rule: str, message: str,
                         labels: Taint) -> None:
        self.result.param_sinks.setdefault(index, set()) \
            .add((rule, message))
        self._param_sink_labels[(rule, message)] = \
            self._param_sink_labels.get((rule, message), EMPTY) | labels

    def _record_hit(self, rule: str, node: ast.AST, message: str) -> None:
        key = (rule + message, id(node))
        if key in self._hit_keys:
            return
        self._hit_keys.add(key)
        self.result.hits.append(Hit(rule=rule, node=node, message=message,
                                    function=self.info.qualname))
