"""reprolint: simulator-invariant static analysis for the Horus reproduction.

The two worst bug classes this repository has fixed — MAC domain mixing and
batched-vs-scalar observable drift — were both visible in the AST long before
any fault matrix or differential oracle caught them at run time.  This package
encodes those invariants (and a few more) as machine-checked rules so they
survive aggressive refactors:

``R1`` determinism
    no wall-clock or entropy imports inside the simulator core packages;
``R2`` MAC domain separation
    every MAC computation names its :class:`~repro.crypto.primitives.MacDomain`
    with an explicit ``domain=`` keyword;
``R3`` batch parity
    every public ``*_batch``/``*_blocks`` method has a same-class scalar twin
    and an entry in the batch-equivalence coverage map;
``R4`` exception hygiene
    no bare/broad ``except`` that swallows (re-raising handlers are fine);
``R5`` magic timing/energy numbers
    Table I/II constants must come from :mod:`repro.common.constants`;
``R6`` stats accounting
    NVM data movement must go through the accounted
    :class:`~repro.mem.nvm.NvmDevice` interface, never the raw backend;
``R0`` suppression hygiene
    every ``# reprolint: disable=...`` comment must name registered rules.

On top of the fast AST rules, ``--deep`` runs the reproflow dataflow
engine (:mod:`repro.lint.flow`): a call graph over ``src/repro``, per-
function taint propagation, and interprocedural summaries to a fixed
point, powering **F1** key-domain taint, **F2** plaintext escape, **F3**
fault-plan parity, **F4** hook forced-scalar, and **F5** counter
monotonicity — with a shrink-only ``flow-baseline.txt`` mirroring the
mypy baseline.

Run it as ``python -m repro.lint src tests`` (exit 0 = clean) or
``python -m repro.lint --deep --format sarif``; see ``docs/linting.md``
for rule details, suppression syntax (``# reprolint: disable=R4``), and
how to add a rule.
"""

from repro.lint.core import RULES, Finding, Module, Project, Rule, register
from repro.lint.flow.rules import FlowRule
from repro.lint.runner import LintResult, lint_paths, main

__all__ = [
    "RULES",
    "Finding",
    "FlowRule",
    "LintResult",
    "Module",
    "Project",
    "Rule",
    "lint_paths",
    "main",
    "register",
]
