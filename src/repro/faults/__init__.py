"""Fault injection and crash-consistency harness.

:mod:`repro.faults.plan` defines the fault classes (power cut, torn write,
dropped write, bit flip) and the :class:`~repro.faults.plan.FaultPlan` that
applies them to the NVM write path; :mod:`repro.faults.matrix` runs the
scheme × fault crash matrix and classifies each cell as recovered-exact,
detected, lost-unprotected, or silent-corruption.
"""

from repro.faults.plan import (BitFlip, DroppedWrite, Fault, FaultEvent,
                               FaultPlan, PowerCut, TornWrite)

__all__ = [
    "BitFlip",
    "DroppedWrite",
    "Fault",
    "FaultEvent",
    "FaultPlan",
    "PowerCut",
    "TornWrite",
]
