"""The crash matrix: every scheme × every fault class, classified.

For each scheme variant (the five paper schemes, plus the Horus schemes with
the rotated vault) and each fault class, one cell runs
fill → drain-under-fault → power restore → recover and classifies what the
system ends up believing (``recovered-exact`` / ``detected`` /
``lost-unprotected`` / ``silent-corruption`` — see
:mod:`repro.campaigns.classify` for the taxonomy; the matrix exists to keep
the silent column empty).

The episode machinery (patterned fill, clean-twin profiling, effective-write
fault targeting) and the classification path live in
:mod:`repro.campaigns.engine` now — the crash matrix is the campaign grid's
drain-stream fault column, restricted to the bare fill → drain episode
(``runtime=False``: no replay epoch between fill and crash).  This module
keeps the matrix-shaped API and re-exports the shared pieces so existing
callers and the fault-matrix tests see identical names and byte-identical
results.
"""

from dataclasses import dataclass

from repro.campaigns.classify import (
    DETECTED,
    LOST_UNPROTECTED,
    RECOVERED,
    SILENT,
    classify_outcome,
)
from repro.campaigns.engine import (
    DRAIN_SEED,
    FILL_SEED,
    TORN_PREFIX,
    EpisodeProfile,
    fault_plan_for,
    fill_lines,
    profile_episode,
    run_fault_episode,
)
from repro.campaigns.scenarios import (
    FAULT_CLASSES,
    SCHEME_VARIANTS,
    variant_name,
)
from repro.common.config import SystemConfig

__all__ = [
    "DETECTED",
    "DRAIN_SEED",
    "FAULT_CLASSES",
    "FILL_SEED",
    "LOST_UNPROTECTED",
    "RECOVERED",
    "SCHEME_VARIANTS",
    "SILENT",
    "TORN_PREFIX",
    "EpisodeProfile",
    "MatrixCell",
    "classify_outcome",
    "fault_plan_for",
    "fill_lines",
    "profile_episode",
    "render_markdown",
    "run_cell",
    "run_matrix",
    "variant_name",
]


@dataclass(frozen=True)
class MatrixCell:
    """One scheme-variant × fault-class outcome."""

    scheme: str
    fault: str
    outcome: str
    detail: str

    @property
    def silent(self) -> bool:
        return self.outcome == SILENT


def run_cell(config: SystemConfig, scheme: str, rotate_vault: bool,
             fault: str, lines: int) -> MatrixCell:
    """One matrix cell: fill → drain under the fault → recover → classify."""
    profile = profile_episode(config, scheme, rotate_vault, lines)
    outcome, detail = run_fault_episode(config, scheme, rotate_vault,
                                        fault, lines, profile)
    return MatrixCell(variant_name(scheme, rotate_vault), fault,
                      outcome, detail)


def run_matrix(config: SystemConfig, lines: int = 48,
               faults: tuple[str, ...] = FAULT_CLASSES,
               variants: tuple[tuple[str, bool], ...] = SCHEME_VARIANTS,
               ) -> list[MatrixCell]:
    """The full scheme-variant × fault-class matrix."""
    cells = []
    for scheme, rotate in variants:
        profile = profile_episode(config, scheme, rotate, lines)
        for fault in faults:
            outcome, detail = run_fault_episode(config, scheme, rotate,
                                                fault, lines, profile)
            cells.append(MatrixCell(variant_name(scheme, rotate), fault,
                                    outcome, detail))
    return cells


def render_markdown(cells: list[MatrixCell]) -> str:
    """Detection-coverage table, one row per cell."""
    lines = ["| scheme | fault | outcome | detail |",
             "|---|---|---|---|"]
    for cell in cells:
        lines.append(f"| {cell.scheme} | {cell.fault} | {cell.outcome} "
                     f"| {cell.detail} |")
    return "\n".join(lines)
