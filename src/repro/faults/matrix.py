"""The crash matrix: every scheme × every fault class, classified.

For each scheme variant (the five paper schemes, plus the Horus schemes with
the rotated vault) and each fault class, one cell runs
fill → drain-under-fault → power restore → recover and classifies what the
system ends up believing:

* **recovered-exact** — every line written before the crash reads back
  bit-exact after recovery;
* **detected** — recovery or the post-recovery read sweep raised a typed
  error (:class:`IntegrityError` / :class:`RecoveryError`): the system
  *knows* state was lost or tampered with;
* **lost-unprotected** — data differs and the scheme has no integrity
  machinery to notice (``nosec`` only; the paper's by-design non-goal);
* **silent-corruption** — a scheme that claims protection returned wrong
  data without raising.  Any such cell is a bug; the matrix exists to keep
  this column empty.

Fault positions are derived from a clean twin run of the same episode (the
same seeds), so "the N//2-th write" lands mid-drain regardless of scheme or
scale.
"""

from dataclasses import dataclass

from repro.common.config import SystemConfig
from repro.common.constants import CACHE_LINE_SIZE
from repro.common.errors import IntegrityError, RecoveryError
from repro.core.system import SecureEpdSystem
from repro.faults.plan import (BitFlip, DroppedWrite, Fault, FaultPlan,
                               PowerCut, TornWrite)

FILL_SEED = 11
DRAIN_SEED = 23

RECOVERED = "recovered-exact"
DETECTED = "detected"
LOST_UNPROTECTED = "lost-unprotected"
SILENT = "silent-corruption"

SCHEME_VARIANTS: tuple[tuple[str, bool], ...] = (
    ("nosec", False),
    ("base-lu", False),
    ("base-eu", False),
    ("horus-slm", False),
    ("horus-slm", True),
    ("horus-dlm", False),
    ("horus-dlm", True),
)
"""(scheme, rotate_vault) pairs the matrix sweeps."""

FAULT_CLASSES = ("power-cut", "torn-write", "dropped-write", "bit-flip")


@dataclass(frozen=True)
class MatrixCell:
    """One scheme-variant × fault-class outcome."""

    scheme: str
    fault: str
    outcome: str
    detail: str

    @property
    def silent(self) -> bool:
        return self.outcome == SILENT


def variant_name(scheme: str, rotate_vault: bool) -> str:
    return f"{scheme}+rot" if rotate_vault else scheme


def _build(config: SystemConfig, scheme: str,
           rotate_vault: bool) -> SecureEpdSystem:
    return SecureEpdSystem(config, scheme=scheme, rotate_vault=rotate_vault)


def _pattern(address: int) -> bytes:
    seed = (address * 2654435761) & 0xFFFFFFFF
    return bytes((seed >> (8 * (i % 4))) & 0xFF ^ (i * 37) & 0xFF
                 for i in range(CACHE_LINE_SIZE))


def fill_lines(system: SecureEpdSystem, lines: int) -> dict[int, bytes]:
    """Write ``lines`` patterned cache lines; returns the crash oracle.

    The stride keeps the lines in distinct counter blocks so the episode
    carries a realistic amount of metadata, and the count is chosen by
    callers to span several CHV coalescing groups (including a partial one).
    """
    expected: dict[int, bytes] = {}
    stride = CACHE_LINE_SIZE * 64
    for i in range(lines):
        address = i * stride
        data = _pattern(address)
        system.write(address, data)
        expected[address] = data
    return expected


class _EffectProbe(Fault):
    """Passive fault that records which writes actually change the medium.

    A drain can rewrite a block with the bytes it already holds (e.g. an
    in-place flush of a line an eviction persisted earlier); tearing or
    dropping such a write is a physical no-op.  The probe's twin run tells
    the matrix which write indices are *effective*, so every injected fault
    is guaranteed to matter.
    """

    name = "probe"

    def __init__(self, split: int):
        self.split = split
        self.changed: list[int] = []
        self.tail_changed: list[int] = []

    def apply(self, index, address, data, old):
        if data != old:
            self.changed.append(index)
        if data[self.split:] != old[self.split:]:
            self.tail_changed.append(index)
        return data, False


@dataclass(frozen=True)
class EpisodeProfile:
    """What the clean twin run of an episode looked like."""

    total_writes: int
    changed: tuple[int, ...]
    """Write indices whose data differed from the medium's old content."""
    tail_changed: tuple[int, ...]
    """Write indices whose *second half* differed (a half-block tear of
    these writes changes the persisted outcome)."""


TORN_PREFIX = CACHE_LINE_SIZE // 2
"""Bytes a torn write persists in the matrix (the first half-block)."""


def profile_episode(config: SystemConfig, scheme: str, rotate_vault: bool,
                    lines: int) -> EpisodeProfile:
    """Run the clean twin episode and profile its NVM write stream."""
    twin = _build(config, scheme, rotate_vault)
    fill_lines(twin, lines)
    probe = _EffectProbe(TORN_PREFIX)
    twin.nvm.fault_plan = FaultPlan([probe])
    twin.crash(seed=DRAIN_SEED)
    plan = twin.nvm.restore_power()
    return EpisodeProfile(plan.writes_seen, tuple(probe.changed),
                          tuple(probe.tail_changed))


def _nearest(indices: tuple[int, ...], target: int, label: str) -> int:
    if not indices:
        raise RecoveryError(f"episode has no {label} writes to fault")
    return min(indices, key=lambda i: (abs(i - target), i))


def fault_plan_for(fault: str, profile: EpisodeProfile) -> FaultPlan:
    """A representative, guaranteed-effective mid-drain ``fault`` instance."""
    mid = profile.total_writes // 2
    if fault == "power-cut":
        # Cut just before an effective write, so at least one write that
        # mattered is lost along with the rest of the episode.
        return FaultPlan([PowerCut(
            after_writes=_nearest(profile.changed, mid, "effective"))])
    if fault == "torn-write":
        return FaultPlan([TornWrite(
            at_write=_nearest(profile.tail_changed, mid, "tail-effective"),
            persisted_bytes=TORN_PREFIX)])
    if fault == "dropped-write":
        return FaultPlan([DroppedWrite(
            at_write=_nearest(profile.changed, mid, "effective"))])
    if fault == "bit-flip":
        return FaultPlan([BitFlip(
            at_write=_nearest(profile.changed, mid, "effective"),
            byte_offset=7, xor_mask=0x40)])
    raise ValueError(f"unknown fault class {fault!r}")


def classify_outcome(system: SecureEpdSystem,
                     expected: dict[int, bytes]) -> tuple[str, str]:
    """Recover and sweep; returns (outcome, detail).

    The read sweep is a legitimate detection channel: Base-EU and nosec have
    no recovery step, so whatever they notice, they notice at first use.
    """
    try:
        system.recover()
    except (IntegrityError, RecoveryError) as exc:
        return DETECTED, f"recover: {type(exc).__name__}: {exc}"

    mismatched: list[int] = []
    for address in sorted(expected):
        try:
            actual = system.read(address)
        except (IntegrityError, RecoveryError) as exc:
            return DETECTED, (f"read {address:#x}: "
                              f"{type(exc).__name__}: {exc}")
        if actual != expected[address]:
            mismatched.append(address)

    if mismatched:
        cells = ", ".join(f"{a:#x}" for a in mismatched[:4])
        detail = f"{len(mismatched)} wrong lines (first: {cells})"
        if system.scheme == "nosec":
            return LOST_UNPROTECTED, detail
        return SILENT, detail
    return RECOVERED, "all lines bit-exact"


def _run_faulted(config: SystemConfig, scheme: str, rotate_vault: bool,
                 fault: str, lines: int,
                 profile: EpisodeProfile) -> MatrixCell:
    system = _build(config, scheme, rotate_vault)
    expected = fill_lines(system, lines)
    system.nvm.fault_plan = fault_plan_for(fault, profile)
    system.crash(seed=DRAIN_SEED)
    plan = system.nvm.restore_power()
    if not plan.events:
        raise RecoveryError(
            f"fault {fault!r} never fired for "
            f"{variant_name(scheme, rotate_vault)} "
            f"({plan.writes_seen} writes seen)")
    outcome, detail = classify_outcome(system, expected)
    return MatrixCell(variant_name(scheme, rotate_vault), fault,
                      outcome, detail)


def run_cell(config: SystemConfig, scheme: str, rotate_vault: bool,
             fault: str, lines: int) -> MatrixCell:
    """One matrix cell: fill → drain under the fault → recover → classify."""
    profile = profile_episode(config, scheme, rotate_vault, lines)
    return _run_faulted(config, scheme, rotate_vault, fault, lines, profile)


def run_matrix(config: SystemConfig, lines: int = 48,
               faults: tuple[str, ...] = FAULT_CLASSES,
               variants: tuple[tuple[str, bool], ...] = SCHEME_VARIANTS,
               ) -> list[MatrixCell]:
    """The full scheme-variant × fault-class matrix."""
    cells = []
    for scheme, rotate in variants:
        profile = profile_episode(config, scheme, rotate, lines)
        for fault in faults:
            cells.append(_run_faulted(config, scheme, rotate, fault,
                                      lines, profile))
    return cells


def render_markdown(cells: list[MatrixCell]) -> str:
    """Detection-coverage table, one row per cell."""
    lines = ["| scheme | fault | outcome | detail |",
             "|---|---|---|---|"]
    for cell in cells:
        lines.append(f"| {cell.scheme} | {cell.fault} | {cell.outcome} "
                     f"| {cell.detail} |")
    return "\n".join(lines)
