"""Fault injection plans for the NVM write path.

A :class:`FaultPlan` models what the medium actually persists when the
episode goes wrong: the hold-up source dying after the N-th write
(:class:`PowerCut` — the generalization of the old ``NvmDevice.write_budget``
hook), a torn write persisting only a prefix of a 64 B block
(:class:`TornWrite`), a write the DIMM acknowledges but never commits
(:class:`DroppedWrite`), and a bit flip at a chosen address or write index
(:class:`BitFlip`).

The discipline matches :mod:`repro.attacks`: faults filter what reaches the
*backend* and never touch the accounting.  The controller issued every
request, so stats, the wear tracker, and the request trace all record the
attempt; :attr:`NvmDevice.lost_writes` and :attr:`FaultPlan.events` flag
which attempts the cells never saw (see Yao & Venkataramani on
persistence-boundary attacks — the disagreement between a controller's view
and the medium's view is exactly where NVM systems break).
"""

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.common.constants import CACHE_LINE_SIZE
from repro.common.errors import ConfigError, ReproError


class PowerInterrupt(ReproError):
    """Power died at an injected point *outside* the NVM write stream.

    :class:`PowerCut` models the hold-up source dying mid-drain, where the
    write stream itself defines time.  During *recovery* there is no write
    stream to budget, so a nested power cut is modelled as this exception
    raised from a recovery step hook (see
    :attr:`~repro.core.recovery.HorusRecovery.step_hook`); the campaign
    engine catches it, drops the volatile state again, and re-runs recovery
    — DC/eDC and the shadow count are persistent registers, so re-recovery
    must be idempotent.
    """


@dataclass(frozen=True)
class FaultEvent:
    """One fault firing: which write it hit and what happened to it."""

    write_index: int
    address: int
    fault: str
    effect: str
    """``"lost"`` (nothing persisted), ``"corrupted"`` (mutated bytes
    persisted), or ``"attacked"`` (the write persisted untouched but an
    adversary action ran against the medium)."""


class Fault:
    """One injectable fault; subclasses override :meth:`apply`.

    ``apply`` receives the episode-relative write index, the target address,
    the bytes the controller issued, and the block's current medium content,
    and returns ``(persisted, fired)`` where ``persisted`` is the bytes that
    actually reach the cells (``None`` = the write is lost).
    """

    name = "fault"
    effect_label = "corrupted"
    """Event label when the fault fires but the write still persists."""

    def apply(self, index: int, address: int, data: bytes,
              old: bytes) -> tuple[bytes | None, bool]:
        raise NotImplementedError

    def finish(self, backend) -> FaultEvent | None:
        """Called when power is restored; lets address-triggered faults that
        never saw their target write corrupt the medium directly (content
        rot while the system is off).  Returns the event if one fired."""
        return None


@dataclass
class PowerCut(Fault):
    """The hold-up source dies: writes from index ``after_writes`` on are
    lost in flight (the old ``write_budget`` semantics)."""

    after_writes: int
    name: str = field(default="power-cut", init=False)

    def __post_init__(self) -> None:
        if self.after_writes < 0:
            raise ConfigError("power-cut write budget cannot be negative")

    def apply(self, index, address, data, old):
        if index >= self.after_writes:
            return None, True
        return data, False


@dataclass
class DroppedWrite(Fault):
    """The ``at_write``-th write is acknowledged but never committed; every
    other write persists normally (a failed internal PCM program)."""

    at_write: int
    name: str = field(default="dropped-write", init=False)

    def __post_init__(self) -> None:
        if self.at_write < 0:
            raise ConfigError("dropped-write index cannot be negative")

    def apply(self, index, address, data, old):
        if index == self.at_write:
            return None, True
        return data, False


@dataclass
class TornWrite(Fault):
    """The ``at_write``-th write persists only its first ``persisted_bytes``
    bytes; the tail keeps the block's old content (power failing between the
    device's internal sub-block programs)."""

    at_write: int
    persisted_bytes: int = CACHE_LINE_SIZE // 2
    name: str = field(default="torn-write", init=False)

    def __post_init__(self) -> None:
        if self.at_write < 0:
            raise ConfigError("torn-write index cannot be negative")
        if not 0 <= self.persisted_bytes <= CACHE_LINE_SIZE:
            raise ConfigError(
                f"torn prefix must be 0..{CACHE_LINE_SIZE} bytes, "
                f"got {self.persisted_bytes}")

    def apply(self, index, address, data, old):
        if index == self.at_write:
            k = self.persisted_bytes
            return data[:k] + old[k:], True
        return data, False


@dataclass
class BitFlip(Fault):
    """Flip bits in one byte of a block, either on the ``at_write``-th write
    or on the first write to ``address``; if an address-triggered flip never
    sees its target during the episode, :meth:`finish` applies it to the
    medium directly when power returns (bit rot while the system is off)."""

    byte_offset: int = 0
    xor_mask: int = 0xFF
    address: int | None = None
    at_write: int | None = None
    name: str = field(default="bit-flip", init=False)
    _fired: bool = field(default=False, init=False, repr=False)

    def __post_init__(self) -> None:
        if (self.address is None) == (self.at_write is None):
            raise ConfigError(
                "bit-flip needs exactly one trigger: address= or at_write=")
        if not 0 <= self.byte_offset < CACHE_LINE_SIZE:
            raise ConfigError(f"byte offset {self.byte_offset} out of block")
        if not self.xor_mask & 0xFF:
            raise ConfigError("bit-flip mask must flip at least one bit")

    def apply(self, index, address, data, old):
        if self._fired:
            return data, False
        if self.at_write is not None and index != self.at_write:
            return data, False
        if self.address is not None and address != self.address:
            return data, False
        self._fired = True
        mutated = bytearray(data)
        mutated[self.byte_offset] ^= self.xor_mask & 0xFF
        return bytes(mutated), True

    def finish(self, backend):
        if self._fired or self.address is None:
            return None
        self._fired = True
        mutated = bytearray(backend.read_block(self.address))
        mutated[self.byte_offset] ^= self.xor_mask & 0xFF
        backend.corrupt_block(self.address, bytes(mutated))
        return FaultEvent(-1, self.address, self.name, "corrupted")


@dataclass
class AdversaryAt(Fault):
    """Run an adversary action concurrently with the ``at_write``-th write.

    The write itself persists untouched — the fault is a *timing hook*, not
    a filter: the campaign engine uses it to land a tamper/spoof/splice/
    replay/rollback on already-persisted blocks at a precise point of the
    drain's write stream (the mid-drain injection window), with the target
    index taken from a clean twin run exactly like the crash matrix's fault
    positions.  What the action did to the medium is the adversary's
    business (and the backend's ``attacked_blocks`` ledger records it);
    the plan's event records *when* it happened.
    """

    at_write: int
    action: Callable[[], None]
    name: str = field(default="adversary", init=False)
    effect_label: str = field(default="attacked", init=False)
    _fired: bool = field(default=False, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.at_write < 0:
            raise ConfigError("adversary write index cannot be negative")

    def apply(self, index, address, data, old):
        if self._fired or index != self.at_write:
            return data, False
        self._fired = True
        self.action()
        return data, True


class FaultPlan:
    """A set of faults applied, in order, to every write of an episode.

    Install with ``nvm.fault_plan = FaultPlan([...])``; clear (power
    restored) with ``nvm.restore_power()``, which also gives unfired
    address-triggered faults their :meth:`Fault.finish` shot at the medium.
    """

    def __init__(self, faults=()):
        self._faults: list[Fault] = list(faults)
        for fault in self._faults:
            if not isinstance(fault, Fault):
                raise ConfigError(f"not a Fault: {fault!r}")
        self.writes_seen = 0
        self.events: list[FaultEvent] = []

    @property
    def faults(self) -> tuple[Fault, ...]:
        return tuple(self._faults)

    def filter_write(self, address: int, data: bytes,
                     old: bytes) -> bytes | None:
        """Bytes the medium persists for this write (``None`` = lost)."""
        index = self.writes_seen
        self.writes_seen += 1
        persisted: bytes | None = data
        for fault in self._faults:
            persisted, fired = fault.apply(index, address, persisted, old)
            if fired:
                effect = ("lost" if persisted is None
                          else fault.effect_label)
                self.events.append(
                    FaultEvent(index, address, fault.name, effect))
            if persisted is None:
                break
        return persisted

    def finish(self, backend) -> None:
        """Power restored: apply unfired off-power faults to the medium."""
        for fault in self._faults:
            event = fault.finish(backend)
            if event is not None:
                self.events.append(event)

    def remaining_budget(self) -> int | None:
        """Writes left before the first :class:`PowerCut` kills the medium
        (``None`` when the plan has no power cut) — the ``write_budget``
        compatibility view."""
        for fault in self._faults:
            if isinstance(fault, PowerCut):
                return max(0, fault.after_writes - self.writes_seen)
        return None
