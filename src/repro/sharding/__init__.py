"""Sharded multi-tenant secure memory (the scale-out layer).

One :class:`~repro.core.system.SecureEpdSystem` is one DIMM behind one
controller.  This package composes N of them into a single address space:

- :mod:`repro.sharding.router` — per-DIMM address-range routing between the
  aggregate data space and (shard, local address) pairs.
- :mod:`repro.sharding.keys` — per-tenant key domains layered on the
  engines' :class:`~repro.crypto.primitives.MacDomain` separation, so one
  tenant's MACs can never verify under another tenant's keys.
- :mod:`repro.sharding.system` — :class:`ShardedSecureSystem`, the facade
  routing traffic, crashes, and recovery across the shard fleet.
- :mod:`repro.sharding.drain` — cross-shard drain scheduling under
  pluggable power-budget policies (simultaneous / staggered / budgeted).
- :mod:`repro.sharding.pool` — process-pool fan-out of shard episodes.

The correctness contract mirrors the batch/arena oracles: an N-shard run
over a routed trace is byte-identical, per shard, to N independent
single-controller runs over the route-filtered sub-traces.
"""

from repro.sharding.drain import (
    DRAIN_POLICIES,
    BudgetedDrain,
    DrainPolicy,
    DrainSchedule,
    SimultaneousDrain,
    StaggeredDrain,
    make_drain_policy,
)
from repro.sharding.keys import (
    TenantExtent,
    TenantKeyedAes,
    TenantKeyedMac,
    TenantKeyring,
    TenantKeySchedule,
    derive_tenant_key,
)
from repro.sharding.router import ShardExtent, ShardRouter
from repro.sharding.system import (
    ShardedDrainReport,
    ShardedSecureSystem,
    ShardObservables,
    observe,
)

__all__ = [
    "DRAIN_POLICIES",
    "BudgetedDrain",
    "DrainPolicy",
    "DrainSchedule",
    "ShardExtent",
    "ShardObservables",
    "ShardRouter",
    "ShardedDrainReport",
    "ShardedSecureSystem",
    "SimultaneousDrain",
    "StaggeredDrain",
    "TenantExtent",
    "TenantKeySchedule",
    "TenantKeyedAes",
    "TenantKeyedMac",
    "TenantKeyring",
    "derive_tenant_key",
    "make_drain_policy",
    "observe",
]
