"""The sharded secure-memory facade.

:class:`ShardedSecureSystem` is N independent
:class:`~repro.core.system.SecureEpdSystem` DIMMs behind one
:class:`~repro.sharding.router.ShardRouter`: run-time traffic is routed by
address range, crashes drain every shard under a pluggable cross-shard power
policy, and recovery restores each shard from its own persistent state.
Shards share *nothing* — no caches, no metadata, no keys beyond the derived
per-tenant schedule — which is what makes the equivalence oracle exact: the
sharded run and N solo runs over route-filtered sub-traces execute the same
per-controller operation streams.

:func:`observe` is the common observables probe (NVM image hash, stats,
persistent TCB registers) shared by the sharded system, the solo twins, and
the process-pool workers, so differential comparisons are always
field-by-field over the same dataclass.
"""

import hashlib
from collections.abc import Sequence
from dataclasses import asdict, dataclass, field

from repro.common.config import SystemConfig
from repro.common.errors import ConfigError
from repro.common.rng import spread_seed
from repro.core.recovery import RecoveryReport
from repro.core.system import SecureEpdSystem
from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.epd.drain import DrainReport
from repro.sharding.drain import DrainPolicy, DrainSchedule, make_drain_policy
from repro.sharding.keys import TenantKeyring, TenantKeySchedule
from repro.sharding.router import ShardRouter
from repro.stats.counters import SimStats
from repro.workloads.replay import DEFAULT_EPOCH_OPS, replay
from repro.workloads.trace import MemoryOp, OpKind


@dataclass(frozen=True)
class ShardObservables:
    """Everything a differential comparison checks about one shard.

    Byte-for-byte identity of two runs means equality of this dataclass:
    the persisted NVM image (hashed), every stats counter, and the
    persistent TCB registers (tree root MAC, cache-tree root, DC/eDC).
    """

    shard: int
    scheme: str
    ops: int
    op_reads: int
    op_writes: int
    nvm_sha256: str
    stats: dict[str, object] = field(compare=True)
    root_mac: str | None = None
    cache_tree_root: str | None = None
    drain_count: int | None = None
    drain_ephemeral: int | None = None
    flushed_blocks: int | None = None
    metadata_blocks: int | None = None

    def as_dict(self) -> dict[str, object]:
        """JSON-ready form (golden fixtures)."""
        return asdict(self)


def nvm_image_sha256(system: SecureEpdSystem) -> str:
    """Hash of the persisted NVM image, in the golden-fixture convention
    (sorted blocks, 8-byte little-endian address prefix per block)."""
    digest = hashlib.sha256()
    image = system.nvm.backend.image()
    for address in sorted(image):
        digest.update(address.to_bytes(8, "little"))
        digest.update(image[address])
    return digest.hexdigest()


def observe(system: SecureEpdSystem, shard: int = 0,
            trace: "Sequence[MemoryOp] | None" = None) -> ShardObservables:
    """Snapshot one system's observables (sharded, solo, or pooled run)."""
    ops = len(trace) if trace is not None else 0
    writes = (sum(1 for op in trace if op.kind is OpKind.WRITE)
              if trace is not None else 0)
    controller = system.controller
    counter = system.drain_counter
    drain = system.last_drain
    return ShardObservables(
        shard=shard,
        scheme=system.scheme,
        ops=ops,
        op_reads=ops - writes,
        op_writes=writes,
        nvm_sha256=nvm_image_sha256(system),
        stats=system.stats.snapshot(),
        root_mac=controller.root_mac.hex() if controller is not None
        else None,
        cache_tree_root=(controller.cache_tree_root.hex()
                         if controller is not None
                         and controller.cache_tree_root is not None
                         else None),
        drain_count=counter.value if counter is not None else None,
        drain_ephemeral=counter.ephemeral if counter is not None else None,
        flushed_blocks=drain.flushed_blocks if drain is not None else None,
        metadata_blocks=drain.metadata_blocks if drain is not None else None,
    )


@dataclass(frozen=True)
class ShardedDrainReport:
    """One coordinated cross-shard drain: per-shard episodes + schedule."""

    reports: tuple[DrainReport, ...]
    energies: tuple[EnergyBreakdown, ...]
    schedule: DrainSchedule

    @property
    def wall_seconds(self) -> float:
        return self.schedule.wall_seconds

    @property
    def energy_j(self) -> float:
        return self.schedule.energy_j

    @property
    def peak_power_w(self) -> float:
        return self.schedule.peak_power_w

    @property
    def total_flushed_blocks(self) -> int:
        return sum(report.flushed_blocks for report in self.reports)

    @property
    def total_memory_requests(self) -> int:
        return sum(report.total_memory_requests for report in self.reports)


def shard_key_schedules(router: ShardRouter,
                        keyring: TenantKeyring | None,
                        scheme: str) -> "list[TenantKeySchedule | None]":
    """Per-shard key schedules: the global keyring clipped to each shard's
    window.  ``None`` entries (no keyring, or nosec) select the master-keyed
    engines — shared so solo twins and pool workers key shards identically.
    """
    if keyring is None or scheme == "nosec":
        return [None] * router.num_shards
    return [TenantKeySchedule(keyring.shard_view(extent.base, extent.size))
            for extent in router.extents]


class ShardedSecureSystem:
    """N independent secure DIMM shards behind one routed address space."""

    def __init__(self, config: SystemConfig | None = None,
                 num_shards: int = 4, scheme: str = "horus-dlm",
                 keyring: TenantKeyring | None = None,
                 drain_policy: "str | DrainPolicy" = "simultaneous",
                 power_budget_w: float | None = None,
                 recovery_mode: str = "refill", inclusive: bool = True,
                 rotate_vault: bool = False,
                 batched: bool | None = None):
        self.config = config if config is not None else SystemConfig.paper()
        self.scheme = scheme
        self.router = ShardRouter(self.config, num_shards)
        self.keyring = keyring
        self.policy = make_drain_policy(drain_policy, power_budget_w)
        schedules = shard_key_schedules(self.router, keyring, scheme)
        self.shards = tuple(
            SecureEpdSystem(self.config, scheme=scheme,
                            recovery_mode=recovery_mode, inclusive=inclusive,
                            rotate_vault=rotate_vault, batched=batched,
                            key_schedule=schedule)
            for schedule in schedules)
        self.last_drain: ShardedDrainReport | None = None
        self._shard_traces: tuple[list[MemoryOp], ...] = tuple(
            [] for _ in range(num_shards))

    @property
    def num_shards(self) -> int:
        return self.router.num_shards

    # -- run-time traffic ---------------------------------------------------

    def write(self, address: int, data: bytes) -> None:
        """Routed run-time store of one 64 B line."""
        shard, local = self.router.route(address)
        self.shards[shard].write(local, data)
        self._shard_traces[shard].append(MemoryOp(OpKind.WRITE, local, data))

    def read(self, address: int) -> bytes:
        """Routed run-time load of one 64 B line."""
        shard, local = self.router.route(address)
        data: bytes = self.shards[shard].read(local)
        self._shard_traces[shard].append(MemoryOp(OpKind.READ, local))
        return data

    def replay(self, trace: "list[MemoryOp]", *,
               epoch_ops: int = DEFAULT_EPOCH_OPS,
               batched: bool | None = None) -> dict[int, bytes]:
        """Route a global trace and replay each shard's sub-trace.

        Returns the expected final content per *global* written address,
        mirroring :func:`repro.workloads.replay.replay`.  Per-shard replay
        is epoch-batched exactly as a solo run over the same sub-trace
        would be, which is what the differential oracle asserts.
        """
        parts = self.router.split(trace)
        expected: dict[int, bytes] = {}
        for shard, sub_trace in enumerate(parts):
            if not sub_trace:
                continue
            local = replay(self.shards[shard], sub_trace,
                           epoch_ops=epoch_ops, batched=batched)
            self._shard_traces[shard].extend(sub_trace)
            for address, data in local.items():
                expected[self.router.to_global(shard, address)] = data
        return expected

    # -- crash / drain / recovery ------------------------------------------

    def crash(self, seed: int | None = None,
              cut_after_writes: int | None = None) -> ShardedDrainReport:
        """Coordinated power-outage drain across the fleet.

        Each shard drains under its own spread seed (shards must not share
        randomized drain order streams).  ``cut_after_writes`` models the
        hold-up source dying after that many *fleet-total* persisted writes
        mid-stagger; it requires the staggered policy, where the write
        streams are sequenced and a global write budget is well-defined.
        """
        if cut_after_writes is not None and self.policy.name != "staggered":
            raise ConfigError(
                "cut_after_writes models a mid-stagger power cut; it "
                f"requires the staggered policy, not {self.policy.name!r}")
        reports = []
        energies = []
        model = EnergyModel()
        remaining = cut_after_writes
        for shard, system in enumerate(self.shards):
            if remaining is not None:
                system.nvm.write_budget = remaining
            report = system.crash(seed=spread_seed(seed, "shard", shard))
            if remaining is not None:
                plan = system.nvm.restore_power()
                seen = plan.writes_seen if plan is not None else 0
                remaining = max(0, remaining - seen)
            reports.append(report)
            energies.append(model.breakdown(report))
        schedule = self.policy.schedule(reports, energies)
        self.last_drain = ShardedDrainReport(
            reports=tuple(reports), energies=tuple(energies),
            schedule=schedule)
        return self.last_drain

    def recover(self) -> "tuple[RecoveryReport | None, ...]":
        """Power restoration: every shard restores independently."""
        return tuple(system.recover() for system in self.shards)

    # -- observables --------------------------------------------------------

    def observables(self) -> tuple[ShardObservables, ...]:
        """Per-shard observable snapshots (op counts from routed traffic)."""
        return tuple(
            observe(system, shard=shard, trace=self._shard_traces[shard])
            for shard, system in enumerate(self.shards))

    def aggregate_stats(self) -> SimStats:
        """Fleet-total operation counters."""
        return SimStats.aggregate(system.stats for system in self.shards)
