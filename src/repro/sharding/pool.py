"""Process-pool fan-out of shard episodes.

Shards share nothing, so a sharded episode parallelizes perfectly: each
worker rebuilds its shard's world from a picklable :class:`ShardRunSpec`
(config + tenant-mix plan + seeds — never serialized op streams), runs the
route-filtered sub-trace through a solo controller keyed exactly like the
sharded system's shard, drains, and returns the shard's observables.

Because workers regenerate traces deterministically from the spec, the
pooled result is byte-identical to the in-process
:class:`~repro.sharding.system.ShardedSecureSystem` run over the same spec
(:func:`run_inprocess` is the comparison twin the tests use).
"""

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.common.config import SystemConfig
from repro.common.errors import ConfigError
from repro.common.rng import spread_seed
from repro.core.system import SecureEpdSystem
from repro.energy.model import EnergyModel
from repro.mem.regions import MemoryLayout
from repro.sharding.keys import TenantKeyring
from repro.sharding.router import ShardRouter
from repro.sharding.system import (
    ShardedSecureSystem,
    ShardObservables,
    observe,
    shard_key_schedules,
)
from repro.workloads.replay import DEFAULT_EPOCH_OPS, replay
from repro.workloads.tenantmix import TenantMixer, TenantMixPlan


@dataclass(frozen=True)
class ShardRunSpec:
    """Everything a worker needs to reproduce one shard's episode."""

    config: SystemConfig
    num_shards: int
    scheme: str
    plan: TenantMixPlan
    drain_seed: int | None = None
    drain_policy: str = "simultaneous"
    power_budget_w: float | None = None
    epoch_ops: int = DEFAULT_EPOCH_OPS
    batched: bool | None = None
    tenant_keys: bool = True


@dataclass(frozen=True)
class ShardRunResult:
    """One shard's episode outcome, as returned from a worker."""

    observables: ShardObservables
    drain_seconds: float
    drain_energy_j: float
    drain_writes: int
    drain_reads: int


def make_plan(config: SystemConfig, num_shards: int, num_tenants: int,
              total_ops: int, master_seed: int | None = None,
              footprint_blocks: int = 64,
              **overrides: object) -> TenantMixPlan:
    """A mix plan sized to the fleet's aggregate data space."""
    data_size = MemoryLayout(config).data.size * num_shards
    return TenantMixPlan(
        num_tenants=num_tenants, total_ops=total_ops, data_size=data_size,
        footprint_blocks=footprint_blocks, master_seed=master_seed,
        **overrides)  # type: ignore[arg-type]


def make_keyring(spec: ShardRunSpec) -> TenantKeyring | None:
    """The spec's global tenant keyring (``None`` when keys are off)."""
    if not spec.tenant_keys or spec.scheme == "nosec":
        return None
    return TenantKeyring(spec.plan.extents())


def run_shard(spec: ShardRunSpec, shard: int) -> ShardRunResult:
    """One shard's full episode, rebuilt from scratch (pool worker body).

    Regenerates the global mix, routes it, and runs this shard's sub-trace
    through a solo system keyed with the same clipped keyring view the
    sharded facade would install — the two paths are operation-for-operation
    identical.
    """
    router = ShardRouter(spec.config, spec.num_shards)
    if spec.plan.data_size != router.total_data_size:
        raise ConfigError(
            f"plan spans {spec.plan.data_size} B but the fleet's data "
            f"space is {router.total_data_size} B")
    if not 0 <= shard < spec.num_shards:
        raise ConfigError(
            f"shard {shard} outside fleet of {spec.num_shards}")
    schedules = shard_key_schedules(router, make_keyring(spec), spec.scheme)
    system = SecureEpdSystem(spec.config, scheme=spec.scheme,
                             batched=spec.batched,
                             key_schedule=schedules[shard])
    sub_trace = router.split(TenantMixer(spec.plan).mix())[shard]
    if sub_trace:
        replay(system, sub_trace, epoch_ops=spec.epoch_ops,
               batched=spec.batched)
    report = system.crash(seed=spread_seed(spec.drain_seed, "shard", shard))
    energy = EnergyModel().breakdown(report)
    return ShardRunResult(
        observables=observe(system, shard=shard, trace=sub_trace),
        drain_seconds=report.seconds,
        drain_energy_j=energy.total_j,
        drain_writes=report.total_writes,
        drain_reads=report.total_reads,
    )


def run_pooled(spec: ShardRunSpec,
               jobs: int | None = None) -> tuple[ShardRunResult, ...]:
    """Fan the spec's shards out across worker processes.

    ``jobs=1`` (or a single-shard fleet) runs inline — the same code path
    minus the pool, which keeps pool-vs-inline trivially comparable.
    """
    if jobs is not None and jobs < 1:
        raise ConfigError(f"jobs must be positive, got {jobs}")
    shards = range(spec.num_shards)
    if jobs == 1 or spec.num_shards == 1:
        return tuple(run_shard(spec, shard) for shard in shards)
    workers = min(jobs or spec.num_shards, spec.num_shards)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return tuple(pool.map(run_shard, [spec] * spec.num_shards, shards))


def run_inprocess(spec: ShardRunSpec) -> tuple[ShardObservables, ...]:
    """The in-process twin: one ShardedSecureSystem over the same spec."""
    system = ShardedSecureSystem(
        spec.config, num_shards=spec.num_shards, scheme=spec.scheme,
        keyring=make_keyring(spec), drain_policy=spec.drain_policy,
        power_budget_w=spec.power_budget_w, batched=spec.batched)
    system.replay(TenantMixer(spec.plan).mix(), epoch_ops=spec.epoch_ops,
                  batched=spec.batched)
    system.crash(seed=spec.drain_seed)
    return system.observables()
