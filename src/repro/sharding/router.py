"""Per-DIMM address-range routing.

A sharded system is N identical DIMMs (each a full
:class:`~repro.core.system.SecureEpdSystem` under the same
:class:`~repro.common.config.SystemConfig`) concatenated into one aggregate
data space.  The router is the address decoder in front of the fleet: global
data address → (shard, shard-local address) and back.  Routing is total and
disjoint over ``[0, total_data_size)`` — every aligned address maps to
exactly one shard — which the property suite asserts directly.

Routing is pure arithmetic (no state), so a routed trace can be split into
per-shard sub-traces whose replays are bit-equivalent to the sharded run:
the shard-vs-solo differential oracle in :mod:`tests.test_sharding_differential`
leans on exactly this.
"""

from dataclasses import dataclass

from repro.common.config import SystemConfig
from repro.common.constants import CACHE_LINE_SIZE
from repro.common.errors import AddressError, ConfigError
from repro.mem.regions import MemoryLayout
from repro.workloads.trace import MemoryOp

MAX_SHARDS = 1024
"""Routing sanity bound; real sweeps top out at 16 (one DIMM per channel)."""


@dataclass(frozen=True)
class ShardExtent:
    """One shard's slice of the aggregate data space (global coordinates)."""

    shard: int
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end


class ShardRouter:
    """Route the aggregate data space across ``num_shards`` equal DIMMs."""

    def __init__(self, config: SystemConfig, num_shards: int):
        if not 1 <= num_shards <= MAX_SHARDS:
            raise ConfigError(
                f"shard count must be in 1..{MAX_SHARDS}, got {num_shards}")
        self.config = config
        self.num_shards = num_shards
        self.shard_data_size = MemoryLayout(config).data.size
        if self.shard_data_size % CACHE_LINE_SIZE:
            raise ConfigError(
                f"shard data size {self.shard_data_size:#x} not line "
                f"aligned; local addresses would lose alignment")
        self.total_data_size = self.shard_data_size * num_shards
        self.extents = tuple(
            ShardExtent(shard, shard * self.shard_data_size,
                        self.shard_data_size)
            for shard in range(num_shards))

    # -- address mapping ----------------------------------------------------

    def require_global_address(self, address: int) -> int:
        """Validate a global data address (alignment is the shard's job)."""
        if not 0 <= address < self.total_data_size:
            raise AddressError(
                f"global address {address:#x} outside aggregate data space "
                f"[0, {self.total_data_size:#x})")
        return address

    def shard_of(self, address: int) -> int:
        """The unique shard owning a global data address."""
        self.require_global_address(address)
        return address // self.shard_data_size

    def route(self, address: int) -> tuple[int, int]:
        """Decode a global address to its (shard, local address) pair."""
        self.require_global_address(address)
        return divmod(address, self.shard_data_size)

    def to_local(self, address: int) -> int:
        """The shard-local form of a global address."""
        self.require_global_address(address)
        return address % self.shard_data_size

    def to_global(self, shard: int, local: int) -> int:
        """Encode a (shard, local address) pair back to global coordinates."""
        if not 0 <= shard < self.num_shards:
            raise AddressError(
                f"shard {shard} outside fleet of {self.num_shards}")
        if not 0 <= local < self.shard_data_size:
            raise AddressError(
                f"local address {local:#x} outside shard data space "
                f"[0, {self.shard_data_size:#x})")
        return shard * self.shard_data_size + local

    # -- trace routing ------------------------------------------------------

    def split(self, trace: list[MemoryOp]) -> list[list[MemoryOp]]:
        """Route a global trace into per-shard local sub-traces.

        Per-shard op order matches arrival order (the routed twin of the
        global trace), and every op lands in exactly one sub-trace — so the
        concatenated result is a permutation of the input that only reorders
        across shards, never within one.
        """
        parts: list[list[MemoryOp]] = [[] for _ in range(self.num_shards)]
        size = self.shard_data_size
        total = self.total_data_size
        # Rebasing preserves the source op's validated invariants (the
        # shard base is line aligned, checked at construction), so the
        # rebased ops bypass __post_init__; shard 0's base is zero, so its
        # ops alias the (frozen) originals.  This loop dominates the routed
        # path's overhead and the shard:4:efficiency benchmark gates it.
        make = MemoryOp.__new__
        for op in trace:
            address = op.address
            if not 0 <= address < total:
                self.require_global_address(address)
            shard, local = divmod(address, size)
            if shard:
                rebased = make(MemoryOp)
                fields = rebased.__dict__
                fields["kind"] = op.kind
                fields["address"] = local
                fields["data"] = op.data
                parts[shard].append(rebased)
            else:
                parts[0].append(op)
        return parts
