"""Cross-shard drain scheduling under a shared hold-up power budget.

One drain episode per shard is fixed by that shard's scheme and dirty state;
the fleet-level question is *when* each shard's episode runs.  The hold-up
source (super-caps, battery) has a peak-power rating as well as an energy
rating, so the policies trade wall time against peak draw:

``simultaneous``
    Every shard drains at once: wall time is the slowest shard, peak power
    is the whole fleet's sum — the biggest hold-up source, the shortest
    outage window.
``staggered``
    Shards drain one after another in shard order: peak power is one
    shard's draw, wall time is the sum — the smallest hold-up source.
``budgeted``
    Greedy schedule under an explicit watt cap: shards start in order as
    soon as headroom allows, interpolating between the two extremes.

Policies only *schedule* the already-measured per-shard reports — they never
change what a shard drains — so per-shard drain observables are invariant
across policies (asserted by the drain-policy test battery).  Per-shard
power is the episode's average draw (energy over duration), matching the
Section V-G energy model the per-shard breakdowns come from.
"""

import heapq
from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.energy.model import EnergyBreakdown
from repro.epd.drain import DrainReport

DRAIN_POLICIES = ("simultaneous", "staggered", "budgeted")

_EPS = 1e-9
"""Relative slack for float power comparisons in the greedy scheduler."""


def shard_power_w(report: DrainReport, energy: EnergyBreakdown) -> float:
    """One shard's average drain draw: episode energy over episode time."""
    return _power_w(report.seconds, energy.total_j)


def _power_w(seconds: float, energy_j: float) -> float:
    if seconds <= 0.0:
        return 0.0
    return energy_j / seconds


@dataclass(frozen=True)
class DrainSlot:
    """One shard's scheduled drain window."""

    shard: int
    start_s: float
    seconds: float
    power_w: float
    energy_j: float

    @property
    def end_s(self) -> float:
        return self.start_s + self.seconds


@dataclass(frozen=True)
class DrainSchedule:
    """The fleet-level outcome of one coordinated drain."""

    policy: str
    slots: tuple[DrainSlot, ...]
    wall_seconds: float
    peak_power_w: float
    energy_j: float

    @property
    def milliseconds(self) -> float:
        return self.wall_seconds * 1e3


def _finish(policy: str, slots: Sequence[DrainSlot]) -> DrainSchedule:
    """Assemble a schedule, measuring peak power with an event sweep."""
    events: list[tuple[float, float]] = []
    for slot in slots:
        if slot.seconds > 0.0 and slot.power_w > 0.0:
            events.append((slot.start_s, slot.power_w))
            events.append((slot.end_s, -slot.power_w))
    events.sort()
    peak = 0.0
    level = 0.0
    for _, delta in events:
        level += delta
        peak = max(peak, level)
    return DrainSchedule(
        policy=policy,
        slots=tuple(slots),
        wall_seconds=max((slot.end_s for slot in slots), default=0.0),
        peak_power_w=peak,
        energy_j=sum(slot.energy_j for slot in slots),
    )


class DrainPolicy(ABC):
    """Base policy: maps per-shard (seconds, joules) episodes to a schedule.

    :meth:`schedule_measured` is the core — it needs only each shard's
    episode duration and energy, so process-pool results (which carry bare
    measurements, not report objects) schedule exactly like in-process
    runs.  :meth:`schedule` is the report-level convenience wrapper.
    """

    name = "abstract"

    def schedule(self, reports: Sequence[DrainReport],
                 energies: Sequence[EnergyBreakdown]) -> DrainSchedule:
        """Schedule the fleet's drain slots from the measured episodes."""
        if len(reports) != len(energies):
            raise ConfigError(
                f"got {len(reports)} drain reports but {len(energies)} "
                f"energy breakdowns")
        return self.schedule_measured(
            [(report.seconds, energy.total_j)
             for report, energy in zip(reports, energies)])

    def schedule_measured(
            self, episodes: "Sequence[tuple[float, float]]") -> DrainSchedule:
        """Schedule from bare per-shard (seconds, energy_j) measurements."""
        return self._schedule(episodes)

    @abstractmethod
    def _schedule(
            self, episodes: "Sequence[tuple[float, float]]") -> DrainSchedule:
        """Policy-specific slot placement."""


class SimultaneousDrain(DrainPolicy):
    """All shards drain at once (wall = max, peak = sum)."""

    name = "simultaneous"

    def _schedule(
            self, episodes: "Sequence[tuple[float, float]]") -> DrainSchedule:
        slots = [
            DrainSlot(shard, 0.0, seconds, _power_w(seconds, energy_j),
                      energy_j)
            for shard, (seconds, energy_j) in enumerate(episodes)]
        return _finish(self.name, slots)


class StaggeredDrain(DrainPolicy):
    """Shards drain strictly one after another (wall = sum, peak = max)."""

    name = "staggered"

    def _schedule(
            self, episodes: "Sequence[tuple[float, float]]") -> DrainSchedule:
        slots = []
        clock = 0.0
        for shard, (seconds, energy_j) in enumerate(episodes):
            slots.append(DrainSlot(shard, clock, seconds,
                                   _power_w(seconds, energy_j), energy_j))
            clock += seconds
        return _finish(self.name, slots)


class BudgetedDrain(DrainPolicy):
    """Greedy in-order scheduling under an aggregate watt cap.

    Each shard starts as soon as running drains have released enough of the
    budget; with a cap at or above the fleet's summed draw this degenerates
    to ``simultaneous``, and with a cap of one shard's draw to
    ``staggered``.
    """

    name = "budgeted"

    def __init__(self, budget_w: float):
        if budget_w <= 0.0:
            raise ConfigError(
                f"power budget must be positive, got {budget_w}")
        self.budget_w = budget_w

    def _schedule(
            self, episodes: "Sequence[tuple[float, float]]") -> DrainSchedule:
        slack = self.budget_w * _EPS
        slots = []
        running: list[tuple[float, float]] = []
        clock = 0.0
        level = 0.0
        for shard, (seconds, energy_j) in enumerate(episodes):
            power = _power_w(seconds, energy_j)
            if power > self.budget_w + slack:
                raise ConfigError(
                    f"shard {shard} draws {power:.3f} W alone, over the "
                    f"{self.budget_w:.3f} W budget — no schedule exists")
            while running and (level + power > self.budget_w + slack
                               or running[0][0] <= clock):
                end, released = heapq.heappop(running)
                clock = max(clock, end)
                level -= released
            slots.append(DrainSlot(shard, clock, seconds, power, energy_j))
            heapq.heappush(running, (clock + seconds, power))
            level += power
        return _finish(self.name, slots)


def make_drain_policy(policy: "str | DrainPolicy",
                      budget_w: float | None = None) -> DrainPolicy:
    """Resolve a policy by name (``budget_w`` required for ``budgeted``)."""
    if isinstance(policy, DrainPolicy):
        return policy
    if policy == "simultaneous":
        return SimultaneousDrain()
    if policy == "staggered":
        return StaggeredDrain()
    if policy == "budgeted":
        if budget_w is None:
            raise ConfigError(
                "the budgeted drain policy needs power_budget_w=")
        return BudgetedDrain(budget_w)
    raise ConfigError(
        f"unknown drain policy {policy!r}; expected one of {DRAIN_POLICIES}")
