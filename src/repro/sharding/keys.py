"""Per-tenant key domains on top of the engines' MAC-domain separation.

:class:`~repro.crypto.primitives.MacDomain` keeps a MAC from verifying
outside the *structural* role it was written for (data vs tree node vs CHV).
Multi-tenancy needs the orthogonal guarantee: tenant A's ciphertext and MACs
must never decrypt or verify under tenant B's keys, even at the same address
shape.  This module derives one (AES key, MAC key) pair per tenant from the
controller's master keys and swaps keyed engine subclasses into the
controller via the :class:`~repro.crypto.engine.KeySchedule` injection point.

Only the *data-path* operations are tenant-keyed (block encryption and the
per-block data/CHV MACs, which carry a data address).  Metadata — counters,
tree nodes, DLM second-level digests — stays under the controller's master
key: the integrity tree spans all tenants by construction, and its nodes
carry no tenant-addressable content.
"""

import hashlib
from bisect import bisect_right
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.common.constants import CACHE_LINE_SIZE, MAC_SIZE
from repro.common.errors import ConfigError
from repro.crypto import batch
from repro.crypto.engine import (
    DEFAULT_AES_KEY,
    DEFAULT_MAC_KEY,
    AesEngine,
    MacEngine,
    block_domain,
)
from repro.crypto.primitives import (
    MacDomain,
    compute_mac,
    decrypt_block,
    encrypt_block,
    int_field,
)
from repro.stats.counters import SimStats
from repro.stats.events import AesKind, MacKind

TENANT_KEY_SIZE = 32
_PLACEHOLDER_MAC = bytes(MAC_SIZE)

MASTER_TENANT = -1
"""Pseudo tenant id for addresses no extent owns (master-keyed)."""


def derive_tenant_key(master: bytes, tenant_id: int,
                      label: bytes = b"tenant") -> bytes:
    """Derive one tenant's key from a master key (keyed BLAKE2b KDF).

    Deterministic in (master, tenant_id, label) only — a tenant keeps its
    key across shards, reshardings, and restarts — and one-way, so a
    captured tenant key reveals nothing about the master or its siblings.
    """
    if tenant_id < 0:
        raise ConfigError(f"tenant id must be non-negative, got {tenant_id}")
    digest = hashlib.blake2b(key=master, digest_size=TENANT_KEY_SIZE)
    digest.update(label)
    digest.update(int_field(tenant_id))
    return digest.digest()


@dataclass(frozen=True)
class TenantExtent:
    """One tenant's contiguous slice of a data space."""

    tenant_id: int
    base: int
    size: int

    def __post_init__(self) -> None:
        if self.tenant_id < 0:
            raise ConfigError(
                f"tenant id must be non-negative, got {self.tenant_id}")
        if self.base < 0 or self.base % CACHE_LINE_SIZE:
            raise ConfigError(
                f"tenant {self.tenant_id} base {self.base:#x} must be a "
                f"non-negative line multiple")
        if self.size <= 0 or self.size % CACHE_LINE_SIZE:
            raise ConfigError(
                f"tenant {self.tenant_id} size {self.size:#x} must be a "
                f"positive line multiple")

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end


class TenantKeyring:
    """Address → tenant → key resolution over disjoint tenant extents.

    Addresses outside every extent resolve to the master keys
    (:data:`MASTER_TENANT`), so a keyring is total over its data space and
    a ring with no extents degenerates to exactly the unkeyed engines.
    """

    def __init__(self, extents: Sequence[TenantExtent],
                 aes_master: bytes = DEFAULT_AES_KEY,
                 mac_master: bytes = DEFAULT_MAC_KEY):
        ordered = sorted(extents, key=lambda extent: extent.base)
        for earlier, later in zip(ordered, ordered[1:]):
            if earlier.end > later.base:
                raise ConfigError(
                    f"tenant extents overlap: tenant {earlier.tenant_id} "
                    f"[{earlier.base:#x}, {earlier.end:#x}) and tenant "
                    f"{later.tenant_id} [{later.base:#x}, {later.end:#x})")
        self.extents = tuple(ordered)
        self.aes_master = aes_master
        self.mac_master = mac_master
        self._bases = [extent.base for extent in ordered]
        self._aes_keys: dict[int, bytes] = {MASTER_TENANT: aes_master}
        self._mac_keys: dict[int, bytes] = {MASTER_TENANT: mac_master}

    def tenant_of(self, address: int) -> int:
        """The tenant owning ``address`` (:data:`MASTER_TENANT` if none)."""
        index = bisect_right(self._bases, address) - 1
        if index >= 0 and self.extents[index].contains(address):
            return self.extents[index].tenant_id
        return MASTER_TENANT

    def aes_key(self, tenant_id: int) -> bytes:
        key = self._aes_keys.get(tenant_id)
        if key is None:
            key = derive_tenant_key(self.aes_master, tenant_id)
            self._aes_keys[tenant_id] = key
        return key

    def mac_key(self, tenant_id: int) -> bytes:
        key = self._mac_keys.get(tenant_id)
        if key is None:
            key = derive_tenant_key(self.mac_master, tenant_id)
            self._mac_keys[tenant_id] = key
        return key

    def key_runs(self,
                 addresses: Sequence[int]) -> Iterator[tuple[int, int, int]]:
        """Group a batch into maximal same-tenant runs.

        Yields ``(start, end, tenant_id)`` index spans; the batched engine
        paths issue one crypto batch per run, which is byte-identical to
        per-element keying because the primitives are per-block.
        """
        count = len(addresses)
        start = 0
        while start < count:
            tenant = self.tenant_of(addresses[start])
            end = start + 1
            while end < count and self.tenant_of(addresses[end]) == tenant:
                end += 1
            yield start, end, tenant
            start = end

    def shard_view(self, base: int, size: int) -> "TenantKeyring":
        """The keyring as one shard sees it: extents clipped to the shard's
        global window ``[base, base + size)`` and rebased to local
        coordinates.  Keys depend only on tenant ids, so a tenant spanning
        a shard boundary uses the same keys on both sides.
        """
        if base < 0 or size <= 0:
            raise ConfigError(
                f"shard window [{base:#x}, +{size:#x}) must be non-negative "
                f"and non-empty")
        clipped = []
        for extent in self.extents:
            lo = max(extent.base, base)
            hi = min(extent.end, base + size)
            if lo < hi:
                clipped.append(TenantExtent(extent.tenant_id, lo - base,
                                            hi - lo))
        return TenantKeyring(clipped, self.aes_master, self.mac_master)


class TenantKeyedAes(AesEngine):
    """Counter-mode engine resolving the AES key per data address.

    Accounting is identical to the base engine (same kinds, same counts);
    only the key under each block changes.  Addresses outside every tenant
    extent use the master key, so metadata-path users are unaffected.
    """

    def __init__(self, stats: SimStats, keyring: TenantKeyring,
                 functional: bool = True) -> None:
        super().__init__(stats, key=keyring.aes_master, functional=functional)
        self.keyring = keyring

    def encrypt(self, address: int, counter: int,
                plaintext: bytes | None) -> bytes | None:
        """Encrypt one block under its owning tenant's key."""
        self._stats.record_aes(AesKind.ENCRYPT)
        if not self.functional or plaintext is None:
            return plaintext
        key = self.keyring.aes_key(self.keyring.tenant_of(address))
        return encrypt_block(key, address, counter, plaintext)

    def decrypt(self, address: int, counter: int,
                ciphertext: bytes | None) -> bytes | None:
        """Decrypt one block under its owning tenant's key."""
        self._stats.record_aes(AesKind.DECRYPT)
        if not self.functional or ciphertext is None:
            return ciphertext
        key = self.keyring.aes_key(self.keyring.tenant_of(address))
        return decrypt_block(key, address, counter, ciphertext)

    def _run_batch(self, kind: AesKind, addresses: Sequence[int],
                   counters: Sequence[int],
                   buffer: bytes | bytearray | memoryview | None
                   ) -> bytes | None:
        self._stats.record_aes(kind, len(addresses))
        if not self.functional or buffer is None:
            return None
        view = memoryview(buffer)
        parts: list[bytes] = []
        for start, end, tenant in self.keyring.key_runs(addresses):
            key = self.keyring.aes_key(tenant)
            parts.append(batch.encrypt_blocks(
                key, addresses[start:end], counters[start:end],
                view[start * CACHE_LINE_SIZE:end * CACHE_LINE_SIZE]))
        return b"".join(parts)

    def encrypt_batch(self, addresses: Sequence[int],
                      counters: Sequence[int],
                      plaintext: bytes | bytearray | memoryview | None,
                      frames: batch.Frames = None) -> bytes | None:
        """Batched :meth:`encrypt`: one crypto batch per same-tenant run.

        ``frames`` is accepted for interface parity but recomputed per run
        (frames are a pure function of (address, counter), so the output is
        byte-identical either way).
        """
        return self._run_batch(AesKind.ENCRYPT, addresses, counters,
                               plaintext)

    def decrypt_batch(self, addresses: Sequence[int],
                      counters: Sequence[int],
                      ciphertext: bytes | bytearray | memoryview | None,
                      frames: batch.Frames = None) -> bytes | None:
        """Batched :meth:`decrypt` (counter mode: same op as encryption)."""
        return self._run_batch(AesKind.DECRYPT, addresses, counters,
                               ciphertext)


class TenantKeyedMac(MacEngine):
    """MAC engine resolving the *block* MAC key per data address.

    Only :meth:`block_mac` / :meth:`block_mac_batch` — the shapes that carry
    a data address — are tenant-keyed.  Node and digest MACs (tree slots,
    cache-tree levels, DLM second level) stay master-keyed: the integrity
    tree spans all tenants and its content is controller metadata.
    """

    def __init__(self, stats: SimStats, keyring: TenantKeyring,
                 functional: bool = True) -> None:
        super().__init__(stats, key=keyring.mac_master, functional=functional)
        self.keyring = keyring

    def block_mac(self, kind: MacKind, ciphertext: bytes | None,
                  address: int, counter: int,
                  domain: MacDomain | None = None) -> bytes:
        """Per-block data/CHV MAC under the owning tenant's key."""
        self._stats.record_mac(kind)
        if not self.functional or ciphertext is None:
            return _PLACEHOLDER_MAC
        key = self.keyring.mac_key(self.keyring.tenant_of(address))
        return compute_mac(key, ciphertext, int_field(address),
                           int_field(counter, 16),
                           domain=block_domain(kind, domain))

    def block_mac_batch(self, kind: MacKind,
                        buffer: bytes | bytearray | memoryview | None,
                        addresses: Sequence[int], counters: Sequence[int],
                        domain: MacDomain | None = None,
                        frames: batch.Frames = None) -> list[bytes]:
        """Batched :meth:`block_mac`: one MAC batch per same-tenant run."""
        count = len(addresses)
        self._stats.record_mac(kind, count)
        if not self.functional or buffer is None:
            return [_PLACEHOLDER_MAC] * count
        resolved = block_domain(kind, domain)
        view = memoryview(buffer)
        macs: list[bytes] = []
        for start, end, tenant in self.keyring.key_runs(addresses):
            key = self.keyring.mac_key(tenant)
            macs.extend(batch.compute_block_macs(
                key, view[start * CACHE_LINE_SIZE:end * CACHE_LINE_SIZE],
                addresses[start:end], counters[start:end], resolved))
        return macs


@dataclass(frozen=True)
class TenantKeySchedule:
    """The :class:`~repro.crypto.engine.KeySchedule` installing tenant keys.

    Picklable (the keyring holds only bytes and extents), so process-pool
    shard workers can rebuild identical engines from a shipped spec.
    """

    keyring: TenantKeyring

    def build(self, stats: SimStats,
              functional: bool) -> tuple[AesEngine, MacEngine]:
        """Return the tenant-keyed engine pair for one controller."""
        return (TenantKeyedAes(stats, self.keyring, functional=functional),
                TenantKeyedMac(stats, self.keyring, functional=functional))
