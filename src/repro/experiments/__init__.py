"""Experiment harness: one module per paper table/figure, plus ablations.

See :mod:`repro.experiments.runner` for the command-line entry point and
``DESIGN.md`` for the experiment index.
"""

from repro.experiments.result import ExperimentResult, ShapeCheck
from repro.experiments.suite import DrainSuite

__all__ = ["ExperimentResult", "ShapeCheck", "DrainSuite"]
