"""Experiment runner: regenerate every table and figure of the evaluation.

Usage::

    python -m repro.experiments.runner                  # everything, scale 16
    python -m repro.experiments.runner --scale 1        # full paper scale
    python -m repro.experiments.runner fig6 fig11       # a subset

``--scale N`` shrinks the Table I configuration by N (power of two) while
preserving the worst-case behaviour; scale 1 is the paper's exact setup
(~296 k flushed blocks; the two baseline schemes take tens of seconds each in
pure Python).  Fig. 16 always evaluates at paper scale (analytic).
"""

import argparse
import sys
from collections.abc import Callable

from repro.experiments import ablations
from repro.experiments.adr_comparison import run as run_adr
from repro.experiments.availability import run as run_availability
from repro.experiments.parallelism import run as run_parallelism
from repro.experiments.runtime_overhead import run as run_runtime
from repro.experiments.scheduling import run as run_scheduling
from repro.experiments.wear import run as run_wear
from repro.experiments.fig06_motivation import run as run_fig6
from repro.experiments.headline import run as run_headline
from repro.experiments.fig11_drain_time import run as run_fig11
from repro.experiments.fig12_write_breakdown import run as run_fig12
from repro.experiments.fig13_mac_breakdown import run as run_fig13
from repro.experiments.fig14_15_llc_sweep import run_fig14, run_fig15
from repro.experiments.fig16_recovery_time import run as run_fig16
from repro.experiments.result import ExperimentResult
from repro.experiments.suite import DrainSuite
from repro.experiments.table2_energy import run as run_table2
from repro.experiments.table3_battery import run as run_table3

EXPERIMENTS: dict[str, Callable[[DrainSuite], ExperimentResult]] = {
    "headline": run_headline,
    "fig6": run_fig6,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "fig14": run_fig14,
    "fig15": run_fig15,
    "fig16": run_fig16,
    "table2": run_table2,
    "table3": run_table3,
    "ablation-locality": ablations.run_locality,
    "ablation-metadata-cache": ablations.run_metadata_cache,
    "ablation-coalescing": ablations.run_coalescing,
    "ablation-adr-vs-epd": run_adr,
    "ablation-wear": run_wear,
    "ablation-parallelism": run_parallelism,
    "ablation-runtime": run_runtime,
    "ablation-availability": run_availability,
    "ablation-scheduler": run_scheduling,
}


def run_experiments(names: list[str], scale: int = 16,
                    functional: bool = True) -> list[ExperimentResult]:
    """Run the named experiments over one shared drain suite."""
    suite = DrainSuite(scale=scale, functional=functional)
    return [EXPERIMENTS[name](suite) for name in names]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the Horus paper's tables and figures.")
    parser.add_argument("experiments", nargs="*",
                        choices=[*EXPERIMENTS, []],
                        help="subset to run (default: all)")
    parser.add_argument("--scale", type=int, default=16,
                        help="config shrink factor, power of two "
                             "(1 = full paper scale; default 16)")
    parser.add_argument("--fast", action="store_true",
                        help="counting-only mode (skips real crypto values)")
    parser.add_argument("--output", metavar="DIR",
                        help="also write results.json and results.md there")
    parser.add_argument("--chart", action="store_true",
                        help="render each experiment's last numeric column "
                             "as ASCII bars")
    args = parser.parse_args(argv)

    names = args.experiments or list(EXPERIMENTS)
    results = run_experiments(names, scale=args.scale,
                              functional=not args.fast)

    if args.output:
        from repro.experiments.export import write_results
        for path in write_results(results, args.output, args.scale):
            print(f"wrote {path}")

    failures = 0
    for result in results:
        print(result.to_text())
        if args.chart:
            from repro.stats.chart import chart_experiment
            print()
            print(chart_experiment(result))
        print()
        failures += sum(1 for check in result.checks if not check.passed)
    total_checks = sum(len(result.checks) for result in results)
    print(f"shape checks: {total_checks - failures}/{total_checks} passed "
          f"(scale={args.scale})")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
