"""Experiment runner: regenerate every table and figure of the evaluation.

Usage::

    python -m repro.experiments.runner                  # everything, scale 16
    python -m repro.experiments.runner --scale 1        # full paper scale
    python -m repro.experiments.runner fig6 fig11       # a subset
    python -m repro.experiments.runner --jobs 4         # parallel fan-out
    python -m repro.experiments.runner --profile        # timing + cache table

``--scale N`` shrinks the Table I configuration by N (power of two) while
preserving the worst-case behaviour; scale 1 is the paper's exact setup
(~296 k flushed blocks; the two baseline schemes take tens of seconds each in
pure Python).  Fig. 16 always evaluates at paper scale (analytic).

``--jobs N`` (default ``os.cpu_count()``) fans independent experiments — and
the independent ``(config, scheme, llc_size)`` drain episodes they share —
out across a :class:`~concurrent.futures.ProcessPoolExecutor`.  ``--jobs 1``
preserves the serial path exactly; both paths produce identical payloads
(every experiment is a pure function of fixed-seed episodes).

Results are cached persistently under ``results/.cache/`` keyed by
(config, scheme, seeds, code version) — see :mod:`repro.experiments.cache`.
``--no-cache`` disables the cache, ``--refresh`` recomputes and overwrites.
"""

import argparse
import os
import sys
import time
from collections.abc import Callable

from repro.experiments import ablations
from repro.experiments.adr_comparison import run as run_adr
from repro.experiments.campaigns import run as run_campaigns
from repro.experiments.faults import run as run_faults
from repro.experiments.availability import run as run_availability
from repro.experiments.parallelism import run as run_parallelism
from repro.experiments.runtime_overhead import run as run_runtime
from repro.experiments.scheduling import run as run_scheduling
from repro.experiments.sharding import run as run_sharding
from repro.experiments.wear import run as run_wear
from repro.experiments.fig06_motivation import run as run_fig6
from repro.experiments.headline import run as run_headline
from repro.experiments.fig11_drain_time import run as run_fig11
from repro.experiments.fig12_write_breakdown import run as run_fig12
from repro.experiments.fig13_mac_breakdown import run as run_fig13
from repro.experiments.fig14_15_llc_sweep import (
    LLC_SIZES,
    SWEEP_SCHEMES,
    run_fig14,
    run_fig15,
)
from repro.experiments.fig16_recovery_time import run as run_fig16
from repro.experiments.cache import ResultCache, experiment_key
from repro.experiments.profile import (
    RunProfile,
    TimingRecord,
    capture_phases,
)
from repro.experiments.result import ExperimentResult
from repro.experiments.suite import DRAIN_SEED, FILL_SEED, DrainSuite
from repro.experiments.table2_energy import run as run_table2
from repro.experiments.table3_battery import run as run_table3

EXPERIMENTS: dict[str, Callable[[DrainSuite], ExperimentResult]] = {
    "headline": run_headline,
    "fig6": run_fig6,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "fig13": run_fig13,
    "fig14": run_fig14,
    "fig15": run_fig15,
    "fig16": run_fig16,
    "table2": run_table2,
    "table3": run_table3,
    "ablation-locality": ablations.run_locality,
    "ablation-metadata-cache": ablations.run_metadata_cache,
    "ablation-coalescing": ablations.run_coalescing,
    "ablation-adr-vs-epd": run_adr,
    "ablation-wear": run_wear,
    "ablation-parallelism": run_parallelism,
    "ablation-runtime": run_runtime,
    "ablation-availability": run_availability,
    "ablation-scheduler": run_scheduling,
    "ablation-faults": run_faults,
    "ablation-campaigns": run_campaigns,
    "ablation-shards": run_sharding,
}

_ALL_SCHEMES = ("nosec", "base-lu", "base-eu", "horus-slm", "horus-dlm")
_SECURE_SCHEMES = ("base-lu", "base-eu", "horus-slm", "horus-dlm")

#: Default-path drain episodes each experiment pulls from the shared suite,
#: as ``(scheme, llc_size_or_None)`` pairs — the parallel runner prewarms
#: the union of these across workers before fanning the experiments out.
EXPERIMENT_EPISODES: dict[str, tuple[tuple[str, int | None], ...]] = {
    "headline": tuple((s, None) for s in _ALL_SCHEMES),
    "fig6": tuple((s, None) for s in _ALL_SCHEMES),
    "fig11": tuple((s, None) for s in _ALL_SCHEMES),
    "fig12": tuple((s, None) for s in _ALL_SCHEMES),
    "fig13": tuple((s, None) for s in _ALL_SCHEMES),
    "fig14": tuple((s, llc) for llc in LLC_SIZES for s in SWEEP_SCHEMES),
    "fig15": tuple((s, llc) for llc in LLC_SIZES for s in SWEEP_SCHEMES),
    "fig16": (),
    "table2": tuple((s, None) for s in _ALL_SCHEMES),
    "table3": tuple((s, None) for s in _SECURE_SCHEMES),
    "ablation-locality": (),
    "ablation-metadata-cache": (("horus-slm", None),),
    "ablation-coalescing": (),
    "ablation-adr-vs-epd": (),
    "ablation-wear": (),
    "ablation-parallelism": (),
    "ablation-runtime": (),
    "ablation-availability": (),
    "ablation-scheduler": (),
    "ablation-faults": (),
    "ablation-campaigns": (),
    "ablation-shards": (),
}


def default_jobs() -> int:
    return os.cpu_count() or 1


# -- worker-process entry points (must be module-level for pickling) ----------

_WORKER_SUITE: DrainSuite | None = None
_WORKER_CACHE: ResultCache | None = None


def _worker_init(scale: int, functional: bool, cache_spec: dict | None,
                 prewarmed: dict) -> None:
    global _WORKER_SUITE, _WORKER_CACHE
    _WORKER_CACHE = ResultCache(**cache_spec) if cache_spec else None
    _WORKER_SUITE = DrainSuite(scale=scale, functional=functional,
                               cache=_WORKER_CACHE)
    for (scheme, llc_size), report in prewarmed.items():
        _WORKER_SUITE.seed_report(scheme, llc_size, report)


def _worker_experiment(name: str):
    """Run one experiment in a worker; the parent already saw a cache miss."""
    start = time.perf_counter()
    result = EXPERIMENTS[name](_WORKER_SUITE)
    if _WORKER_CACHE is not None:
        key = experiment_key(name, _WORKER_SUITE.config(),
                             _WORKER_SUITE.scale, _WORKER_SUITE.functional,
                             FILL_SEED, DRAIN_SEED)
        _WORKER_CACHE.put(key, result)
    seconds = time.perf_counter() - start
    counters = _WORKER_CACHE.counters() if _WORKER_CACHE else {}
    return name, result, seconds, str(os.getpid()), counters


def _episode_task(scale: int, functional: bool, scheme: str,
                  llc_size: int | None, cache_spec: dict | None):
    """Compute one default-path drain episode (parallel prewarm)."""
    cache = ResultCache(**cache_spec) if cache_spec else None
    suite = DrainSuite(scale=scale, functional=functional, cache=cache)
    start = time.perf_counter()
    report = suite.drain(scheme, llc_size=llc_size)
    seconds = time.perf_counter() - start
    counters = cache.counters() if cache else {}
    source = "cache" if counters.get("hits") else "computed"
    return scheme, llc_size, report, seconds, str(os.getpid()), counters, source


# -- orchestration ------------------------------------------------------------

def _episode_label(scheme: str, llc_size: int | None) -> str:
    if llc_size is None:
        return f"drain:{scheme}"
    return f"drain:{scheme}@{llc_size // (1 << 20)}MB"


def run_experiments_profiled(
        names: list[str], scale: int = 16, functional: bool = True,
        jobs: int = 1, cache: ResultCache | None = None,
) -> tuple[list[ExperimentResult], RunProfile]:
    """Run the named experiments; return results plus a :class:`RunProfile`.

    ``jobs=1`` is the serial reference path; ``jobs>1`` prewarms the shared
    drain episodes and then the experiments themselves across a process
    pool.  Both produce identical result payloads.
    """
    profile = RunProfile(jobs=jobs, scale=scale)
    run_start = time.perf_counter()
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}")

    if jobs <= 1:
        results = _run_serial(names, scale, functional, cache, profile,
                              run_start)
    else:
        results = _run_parallel(names, scale, functional, jobs, cache,
                                profile, run_start)

    profile.wall_seconds = time.perf_counter() - run_start
    if cache is not None:
        profile.absorb_cache(cache.counters())
    return results, profile


def _experiment_cache_key(name: str, suite: DrainSuite) -> str:
    return experiment_key(name, suite.config(), suite.scale,
                          suite.functional, FILL_SEED, DRAIN_SEED)


def _run_serial(names, scale, functional, cache, profile, run_start):
    suite = DrainSuite(scale=scale, functional=functional, cache=cache)
    results = []
    for name in names:
        started = time.perf_counter() - run_start
        cached = None
        if cache is not None:
            cached = cache.get(_experiment_cache_key(name, suite))
        if cached is not None:
            result, source = cached, "cache"
        else:
            # Fill/replay/drain sub-phases land on the same profile as
            # extra kind="phase" timeline rows.
            with capture_phases(profile, run_start):
                result, source = EXPERIMENTS[name](suite), "computed"
            if cache is not None:
                cache.put(_experiment_cache_key(name, suite), result)
        results.append(result)
        profile.add(TimingRecord(
            name=name, kind="experiment",
            seconds=time.perf_counter() - run_start - started,
            worker="main", source=source, started=started))
    return results


def _run_parallel(names, scale, functional, jobs, cache, profile, run_start):
    from concurrent.futures import ProcessPoolExecutor, as_completed

    suite = DrainSuite(scale=scale, functional=functional, cache=cache)
    cache_spec = cache.spec() if cache is not None else None

    # Phase 0: serve whole experiments straight from the persistent cache.
    finished: dict[str, ExperimentResult] = {}
    scheduled: list[str] = []
    for name in names:
        if name in finished or name in scheduled:
            continue
        cached = None
        if cache is not None:
            cached = cache.get(_experiment_cache_key(name, suite))
        if cached is not None:
            finished[name] = cached
            profile.add(TimingRecord(
                name=name, kind="experiment", seconds=0.0, worker="main",
                source="cache", started=time.perf_counter() - run_start))
        else:
            scheduled.append(name)

    # Phase 1: prewarm the union of shared drain episodes across workers.
    needed: list[tuple[str, int | None]] = []
    for name in scheduled:
        for episode in EXPERIMENT_EPISODES.get(name, ()):
            if episode not in needed:
                needed.append(episode)
    prewarmed: dict[tuple[str, int | None], object] = {}
    to_compute: list[tuple[str, int | None]] = []
    for scheme, llc_size in needed:
        report = None
        if cache is not None:
            from repro.experiments.cache import episode_key
            report = cache.get(episode_key(
                suite.config(llc_size), scheme, "sparse",
                FILL_SEED, DRAIN_SEED))
        if report is not None:
            prewarmed[(scheme, llc_size)] = report
            profile.add(TimingRecord(
                name=_episode_label(scheme, llc_size), kind="episode",
                seconds=0.0, worker="main", source="cache",
                started=time.perf_counter() - run_start))
        else:
            to_compute.append((scheme, llc_size))

    if to_compute:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                pool.submit(_episode_task, scale, functional, scheme,
                            llc_size, cache_spec): (scheme, llc_size)
                for scheme, llc_size in to_compute
            }
            for future in as_completed(futures):
                scheme, llc_size, report, seconds, worker, counters, \
                    source = future.result()
                prewarmed[(scheme, llc_size)] = report
                profile.absorb_cache(counters)
                profile.add(TimingRecord(
                    name=_episode_label(scheme, llc_size), kind="episode",
                    seconds=seconds, worker=worker, source=source,
                    started=time.perf_counter() - run_start - seconds))

    # Phase 2: fan the remaining experiments out over warm workers.
    if scheduled:
        with ProcessPoolExecutor(
                max_workers=jobs, initializer=_worker_init,
                initargs=(scale, functional, cache_spec, prewarmed)) as pool:
            futures = [pool.submit(_worker_experiment, name)
                       for name in scheduled]
            for future in as_completed(futures):
                name, result, seconds, worker, counters = future.result()
                finished[name] = result
                profile.absorb_cache(counters)
                profile.add(TimingRecord(
                    name=name, kind="experiment", seconds=seconds,
                    worker=worker, source="computed",
                    started=time.perf_counter() - run_start - seconds))

    return [finished[name] for name in names]


def run_experiments(names: list[str], scale: int = 16,
                    functional: bool = True, jobs: int = 1,
                    cache: ResultCache | None = None
                    ) -> list[ExperimentResult]:
    """Run the named experiments over one shared drain suite."""
    results, _ = run_experiments_profiled(
        names, scale=scale, functional=functional, jobs=jobs, cache=cache)
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the Horus paper's tables and figures.")
    parser.add_argument("experiments", nargs="*",
                        choices=[*EXPERIMENTS, []],
                        help="subset to run (default: all)")
    parser.add_argument("--scale", type=int, default=16,
                        help="config shrink factor, power of two "
                             "(1 = full paper scale; default 16)")
    parser.add_argument("--fast", action="store_true",
                        help="counting-only mode (skips real crypto values)")
    parser.add_argument("--jobs", type=int, default=default_jobs(),
                        metavar="N",
                        help="worker processes (default: all cores; "
                             "1 = serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent result cache")
    parser.add_argument("--refresh", action="store_true",
                        help="recompute everything, overwriting the cache")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="cache location (default: results/.cache, or "
                             "$REPRO_CACHE_DIR)")
    parser.add_argument("--profile", action="store_true",
                        help="print per-experiment timing, worker ids, and "
                             "cache hit/miss counts")
    parser.add_argument("--oracle", action="store_true",
                        help="differential oracle: run every episode on both "
                             "the scalar and batched paths and fail on any "
                             "observable difference (sets REPRO_ORACLE=1; "
                             "combine with --refresh to re-verify cached "
                             "episodes)")
    parser.add_argument("--output", metavar="DIR",
                        help="also write results.json and results.md there")
    parser.add_argument("--chart", action="store_true",
                        help="render each experiment's last numeric column "
                             "as ASCII bars")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.oracle:
        # Set before any worker process spawns so the whole fan-out samples.
        os.environ.setdefault("REPRO_ORACLE", "1")

    names = args.experiments or list(EXPERIMENTS)
    cache = None
    if not args.no_cache:
        cache = ResultCache(root=args.cache_dir, refresh=args.refresh)
    results, profile = run_experiments_profiled(
        names, scale=args.scale, functional=not args.fast,
        jobs=args.jobs, cache=cache)

    if args.output:
        from repro.experiments.export import write_results
        for path in write_results(results, args.output, args.scale,
                                  profile=profile):
            print(f"wrote {path}")

    failures = 0
    for result in results:
        print(result.to_text())
        if args.chart:
            from repro.stats.chart import chart_experiment
            print()
            print(chart_experiment(result))
        print()
        failures += sum(1 for check in result.checks if not check.passed)
    if args.profile:
        print(profile.render())
        print()
    total_checks = sum(len(result.checks) for result in results)
    print(f"shape checks: {total_checks - failures}/{total_checks} passed "
          f"(scale={args.scale})")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
