"""Figure 12 — breakdown of memory writes per scheme.

The paper's observations: baseline writes are dominated by security-metadata
evictions (tree/counter/MAC blocks); Horus writes are the vaulted data plus
1/8 address blocks and 1/8 (SLM) or 1/64 (DLM) MAC blocks; the end-of-drain
metadata-cache flush is negligible everywhere.
"""

from repro.core.system import SCHEMES
from repro.experiments.result import ExperimentResult, ShapeCheck
from repro.experiments.suite import DrainSuite
from repro.stats.events import WriteKind


def run(suite: DrainSuite) -> ExperimentResult:
    reports = suite.all_drains()

    headers = ["scheme", "data", "counter", "tree", "data mac", "shadow",
               "chv data", "chv addr", "chv mac", "chv metadata", "total"]
    rows = []
    for scheme in SCHEMES:
        writes = reports[scheme].stats.writes
        rows.append([
            scheme,
            writes[WriteKind.DATA],
            writes[WriteKind.COUNTER],
            writes[WriteKind.TREE_NODE],
            writes[WriteKind.DATA_MAC],
            writes[WriteKind.SHADOW],
            writes[WriteKind.CHV_DATA],
            writes[WriteKind.CHV_ADDRESS],
            writes[WriteKind.CHV_MAC],
            writes[WriteKind.CHV_METADATA],
            reports[scheme].total_writes,
        ])

    lu = reports["base-lu"].stats
    slm = reports["horus-slm"].stats
    dlm = reports["horus-dlm"].stats
    flushed = reports["horus-slm"].flushed_blocks

    metadata_writes_lu = (lu.writes[WriteKind.COUNTER]
                          + lu.writes[WriteKind.TREE_NODE]
                          + lu.writes[WriteKind.DATA_MAC])
    mac_ratio = (slm.writes[WriteKind.CHV_MAC]
                 / max(1, dlm.writes[WriteKind.CHV_MAC]))
    shadow_fraction = max(
        reports[s].metadata_blocks / max(1, reports[s].total_writes)
        for s in SCHEMES if s != "nosec")

    checks = [
        ShapeCheck(
            "baseline (lazy) writes are dominated by metadata evictions",
            metadata_writes_lu > lu.writes[WriteKind.DATA],
            f"{metadata_writes_lu:,} metadata vs "
            f"{lu.writes[WriteKind.DATA]:,} data writes"),
        ShapeCheck(
            "Horus-DLM writes ~8x fewer CHV MAC blocks than Horus-SLM",
            7.0 <= mac_ratio <= 9.0, f"{mac_ratio:.2f}x"),
        ShapeCheck(
            "Horus-SLM total writes ~= 1.25x the flushed blocks",
            1.2 <= slm.total_writes / flushed <= 1.35,
            f"{slm.total_writes / flushed:.3f}x"),
        ShapeCheck(
            "metadata-cache flush is a negligible fraction of drain writes",
            shadow_fraction < 0.1, f"max fraction {shadow_fraction:.3f}"),
    ]
    return ExperimentResult(
        experiment_id="fig12",
        title="Breakdown of memory writes during draining",
        headers=headers,
        rows=rows,
        paper_expectation="baseline writes dominated by integrity-tree "
                          "evictions; Horus-SLM has 8x more CHV MAC writes "
                          "than DLM; metadata flush negligible",
        checks=checks,
    )
