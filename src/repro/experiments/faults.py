"""Detection-coverage table of the crash/fault-injection matrix.

For every scheme variant (the five paper schemes, plus the Horus schemes
with the rotated vault) × every fault class (power cut, torn write, dropped
write, bit flip), one matrix cell drains a small deterministic episode with
the fault active, recovers, and classifies the outcome (see
:mod:`repro.faults.matrix`).  The table is the robustness counterpart to the
performance figures: the paper's claim that Horus "survives the worst
moment" is only meaningful if an interrupted episode is *detected*, never
silently wrong.

The episode is deliberately small (a few dozen dirty lines spanning several
CHV coalescing groups) so the 28-cell matrix stays fast at any ``--scale``;
the classification is scale-invariant — it only depends on where a fault
lands relative to the drain's write stream, which the matrix derives from a
clean twin run of the same seeds.
"""

from repro.experiments.result import ExperimentResult, ShapeCheck
from repro.experiments.suite import DrainSuite
from repro.faults.matrix import (DETECTED, LOST_UNPROTECTED, RECOVERED,
                                 SILENT, run_matrix)

MATRIX_LINES = 48
"""Dirty lines per matrix episode: six full CHV address groups spanning a
partial DLM group, enough for every write class (data, address block, MAC
block, shadow, metadata) to appear mid-episode."""


def run(suite: DrainSuite) -> ExperimentResult:
    """Crash matrix: scheme × fault class → outcome classification."""
    cells = run_matrix(suite.config(), lines=MATRIX_LINES)

    rows = [[cell.scheme, cell.fault, cell.outcome, cell.detail]
            for cell in cells]

    silent = [cell for cell in cells if cell.outcome == SILENT]
    secure = [cell for cell in cells if not cell.scheme.startswith("nosec")]
    nosec = [cell for cell in cells if cell.scheme.startswith("nosec")]
    horus = [cell for cell in cells if cell.scheme.startswith("horus")]
    checks = [
        ShapeCheck(
            "no scheme ever returns wrong data silently "
            "(zero silent-corruption cells)",
            not silent,
            f"{len(silent)} silent cells of {len(cells)}"),
        ShapeCheck(
            "every secure scheme detects or exactly recovers every "
            "fault class",
            all(c.outcome in (DETECTED, RECOVERED) for c in secure),
            f"{sum(c.outcome == DETECTED for c in secure)} detected / "
            f"{sum(c.outcome == RECOVERED for c in secure)} recovered "
            f"of {len(secure)} secure cells"),
        ShapeCheck(
            "non-secure EPD loses interrupted episodes unprotected "
            "(the Fig. 6 motivation)",
            all(c.outcome == LOST_UNPROTECTED for c in nosec),
            f"{sum(c.outcome == LOST_UNPROTECTED for c in nosec)} "
            f"of {len(nosec)} nosec cells"),
        ShapeCheck(
            "Horus detects every fault at recover(), before any state "
            "is trusted",
            all(c.outcome == DETECTED and c.detail.startswith("recover:")
                for c in horus),
            f"{sum(c.detail.startswith('recover:') for c in horus)} "
            f"of {len(horus)} Horus cells detected at recover()"),
    ]
    return ExperimentResult(
        experiment_id="ablation-faults",
        title="Crash/fault-injection matrix: scheme x fault class",
        headers=["scheme", "fault", "outcome", "detail"],
        rows=rows,
        paper_expectation="Section IV-C3 / Table on threat handling: an "
                          "interrupted drain episode is detected by MAC or "
                          "tree verification; only non-secure EPD loses "
                          "state silently",
        checks=checks,
    )
