"""Persistent on-disk result cache for the experiment harness.

Drain episodes and whole experiment results are pure functions of the
configuration, the scheme, the fill/drain seeds, and the simulator source
itself, so both can be cached across runner invocations (and shared between
the runner, the benchmarks, and parallel worker processes).  Entries live
under ``results/.cache/`` (override with ``REPRO_CACHE_DIR``), one pickle
file per key.

Keys are a SHA-256 over a canonical JSON encoding of:

* the full :class:`~repro.common.config.SystemConfig` (every field, so any
  geometry/latency/security change invalidates),
* the scheme / experiment name, fill mode, and the fill/drain seeds,
* a *code version* fingerprint over every ``.py`` file in the ``repro``
  package, so editing the simulator safely invalidates every cached
  result.  ``REPRO_CODE_FINGERPRINT`` selects between the fast local
  ``mtime`` mode (relpath, size, mtime_ns) and a checkout-stable
  ``content`` mode (relpath, sha256); ``REPRO_CODE_VERSION`` pins the
  fingerprint explicitly, e.g. in tests.

Corrupted or truncated cache files are treated as misses (and removed);
the cache never turns a readable-but-wrong file into a crash.
"""

import hashlib
import json
import logging
import os
import pickle
from dataclasses import asdict
from functools import lru_cache
from pathlib import Path

from repro.common.config import SystemConfig

logger = logging.getLogger(__name__)

CACHE_FORMAT = 1
DEFAULT_CACHE_DIR = Path("results") / ".cache"

CACHE_LOAD_ERRORS = (
    OSError,              # unreadable file / permission / truncated read
    EOFError,             # truncated pickle stream
    pickle.UnpicklingError,
    ValueError,           # key/format mismatch raised below, bad pickle data
    KeyError,             # entry dict missing "payload"
    IndexError,           # corrupted pickle opcodes
    TypeError,            # entry is not subscriptable / wrong shapes
    AttributeError,       # payload class no longer importable as pickled
    ImportError,          # payload module no longer importable
    MemoryError,          # absurd length prefix in a corrupted stream
    UnicodeDecodeError,   # corrupted string opcodes
)
"""Everything a corrupt, truncated, or stale cache entry can raise while
being loaded.  Deliberately *not* ``Exception``: a programming error in the
simulator must crash the run, only bad bytes on disk may become a miss."""


@lru_cache(maxsize=1)
def code_version() -> str:
    """Fingerprint of the installed ``repro`` sources.

    Two modes, selected by ``REPRO_CODE_FINGERPRINT``:

    * ``mtime`` (the default) — sorted ``(relpath, size, mtime_ns)``
      entries.  Fast (one ``stat`` per file) and exactly right for local
      editing, but unstable across fresh checkouts, which reset mtimes.
    * ``content`` — sorted ``(relpath, sha256(bytes))`` entries.  Reads
      every source file, but identical trees fingerprint identically
      regardless of checkout time, so CI and shared cache directories
      get real hits.

    ``REPRO_CODE_VERSION`` overrides the computed fingerprint entirely,
    which lets tests exercise invalidation and lets deployments pin a
    release tag.
    """
    override = os.environ.get("REPRO_CODE_VERSION")
    if override:
        return override
    mode = os.environ.get("REPRO_CODE_FINGERPRINT", "mtime")
    if mode not in ("mtime", "content"):
        raise ValueError(
            f"REPRO_CODE_FINGERPRINT must be 'mtime' or 'content', "
            f"got {mode!r}")
    import repro

    root = Path(repro.__file__).resolve().parent
    entries: list[tuple] = []
    for path in sorted(root.rglob("*.py")):
        try:
            if mode == "content":
                entry = (str(path.relative_to(root)),
                         hashlib.sha256(path.read_bytes()).hexdigest())
            else:
                stat = path.stat()
                entry = (str(path.relative_to(root)), stat.st_size,
                         stat.st_mtime_ns)
        except OSError:
            continue
        entries.append(entry)
    digest = hashlib.sha256(json.dumps(entries).encode()).hexdigest()
    return digest[:16]


def config_token(config: SystemConfig) -> str:
    """Canonical string encoding of every configuration field."""
    return json.dumps(asdict(config), sort_keys=True, default=str)


def _digest(kind: str, parts: dict) -> str:
    payload = {"kind": kind, "code_version": code_version(), **parts}
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()


def episode_key(config: SystemConfig, scheme: str, fill: str,
                fill_seed: int, drain_seed: int) -> str:
    """Cache key for one (config, scheme, fill, seeds) drain episode."""
    return _digest("episode", {
        "config": config_token(config),
        "scheme": scheme,
        "fill": fill,
        "fill_seed": fill_seed,
        "drain_seed": drain_seed,
    })


def experiment_key(name: str, config: SystemConfig, scale: int,
                   functional: bool, fill_seed: int,
                   drain_seed: int) -> str:
    """Cache key for one whole experiment result."""
    return _digest("experiment", {
        "experiment": name,
        "config": config_token(config),
        "scale": scale,
        "functional": functional,
        "fill_seed": fill_seed,
        "drain_seed": drain_seed,
    })


def campaign_cell_key(config: SystemConfig, variant: str, scenario: str,
                      window: str, lines: int, fill_seed: int,
                      drain_seed: int) -> str:
    """Cache key for one adversarial-campaign cell.

    A cell is a pure function of the configuration, the (scheme, rotation)
    variant, the scenario × window coordinates, the episode size, and the
    seeds — plus the code version folded in by :func:`_digest`, so any
    simulator change re-runs the whole grid.
    """
    return _digest("campaign-cell", {
        "config": config_token(config),
        "variant": variant,
        "scenario": scenario,
        "window": window,
        "lines": lines,
        "fill_seed": fill_seed,
        "drain_seed": drain_seed,
    })


class ResultCache:
    """Pickle-per-key cache with hit/miss accounting.

    ``enabled=False`` turns every lookup into a miss and every store into a
    no-op (the ``--no-cache`` path); ``refresh=True`` keeps storing but
    ignores existing entries (the ``--refresh`` path).
    """

    def __init__(self, root: str | os.PathLike | None = None,
                 enabled: bool = True, refresh: bool = False):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        self.root = Path(root)
        self.enabled = enabled
        self.refresh = refresh
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        """Misses caused by an unreadable/corrupt entry (subset of misses)."""

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.pkl"

    def get(self, key: str):
        """The cached payload for ``key``, or ``None`` on a miss."""
        if not self.enabled or self.refresh:
            self.misses += 1
            return None
        path = self._path(key)
        try:
            with path.open("rb") as handle:
                entry = pickle.load(handle)
            if (not isinstance(entry, dict)
                    or entry.get("format") != CACHE_FORMAT
                    or entry.get("key") != key):
                raise ValueError("cache entry does not match its key")
            payload = entry["payload"]
        except FileNotFoundError:
            self.misses += 1
            return None
        except CACHE_LOAD_ERRORS as exc:
            # Truncated/corrupted/stale-format files become misses (and are
            # removed): recomputing is always safe, crashing never is.  The
            # reason is logged so a recurring corruption source is visible.
            self.misses += 1
            self.corrupt += 1
            logger.warning("cache miss: dropping corrupt entry %s (%s: %s)",
                           path, type(exc).__name__, exc)
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload) -> None:
        """Store ``payload`` under ``key`` (atomic rename, concurrency-safe)."""
        if not self.enabled:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        entry = {"format": CACHE_FORMAT, "key": key, "payload": payload}
        tmp = self._path(key).with_suffix(f".tmp.{os.getpid()}")
        try:
            with tmp.open("wb") as handle:
                pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path(key))
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return
        self.stores += 1

    # -- bookkeeping ----------------------------------------------------------

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def counters(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores, "corrupt": self.corrupt}

    def absorb_counters(self, counters: dict) -> None:
        """Fold a worker process's counters into this (parent) cache."""
        self.hits += counters.get("hits", 0)
        self.misses += counters.get("misses", 0)
        self.stores += counters.get("stores", 0)
        self.corrupt += counters.get("corrupt", 0)

    def spec(self) -> dict:
        """Picklable constructor arguments for rebuilding in a worker."""
        return {"root": str(self.root), "enabled": self.enabled,
                "refresh": self.refresh}
