"""Figure 11 — normalized drain time (the hold-up budget proxy).

The paper: Base-EU and Base-LU take 5.1x and 4.5x longer than the Horus
schemes; Horus cuts the secure-drain hold-up from 8.6x of non-secure down to
1.7x.
"""

from repro.core.system import SCHEMES
from repro.experiments.result import ExperimentResult, ShapeCheck
from repro.experiments.suite import DrainSuite


def run(suite: DrainSuite) -> ExperimentResult:
    reports = suite.all_drains()
    nosec = reports["nosec"].seconds
    horus_best = min(reports["horus-slm"].seconds,
                     reports["horus-dlm"].seconds)

    headers = ["scheme", "cycles", "drain ms", "x nosec", "x horus"]
    rows = [
        [scheme,
         reports[scheme].cycles,
         reports[scheme].milliseconds,
         reports[scheme].seconds / nosec,
         reports[scheme].seconds / horus_best]
        for scheme in SCHEMES
    ]

    lu = reports["base-lu"].seconds / horus_best
    eu = reports["base-eu"].seconds / horus_best
    slm = reports["horus-slm"].seconds / nosec
    dlm = reports["horus-dlm"].seconds / nosec
    checks = [
        ShapeCheck("Base-LU drains several times slower than Horus "
                   "(paper: 4.5x)", lu > 3.0, f"{lu:.1f}x"),
        ShapeCheck("Base-EU drains several times slower than Horus "
                   "(paper: 5.1x)", eu > 3.0, f"{eu:.1f}x"),
        ShapeCheck("Horus-SLM drain is < 2.5x the non-secure drain "
                   "(paper: 1.7x)", slm < 2.5, f"{slm:.2f}x"),
        ShapeCheck("Horus-DLM is at least as fast as Horus-SLM",
                   dlm <= slm * 1.01, f"DLM {dlm:.2f}x vs SLM {slm:.2f}x"),
    ]
    return ExperimentResult(
        experiment_id="fig11",
        title="Normalized drain time (cycles from outage detection to "
              "fully drained)",
        headers=headers,
        rows=rows,
        paper_expectation="Base-EU 5.1x / Base-LU 4.5x of Horus; Horus 1.7x "
                          "of non-secure (vs 8.6x without Horus)",
        checks=checks,
    )
