"""Detection-coverage table of the adversarial campaign grid.

The campaign grid composes every scheme variant with every adversarial
scenario (tamper/spoof/splice/replay/rollback × data/MAC/counter/CHV/shadow
targets, plus the crash matrix's drain-stream fault classes) and every
injection window (mid replay epoch, mid drain, between crash and recovery,
mid recovery via a nested power cut, after recovery) — the Section IV-A
threat model swept as a lattice instead of hand-picked cases (see
:mod:`repro.campaigns`).

The experiment's contract is the zero-silent-corruption invariant: across
hundreds of cells, no scheme that claims protection may ever return wrong
bytes without raising.  Inapplicable lattice combinations are accounted
skips with explicit reasons — the shape checks verify the lattice adds up,
so no combination is ever silently dropped.

Cells are individually cached (:func:`~repro.experiments.cache
.campaign_cell_key`), so re-runs after a code change only pay for the grid
once and incremental sweeps are cheap.
"""

from repro.campaigns import (
    DETECTED,
    LOST_UNPROTECTED,
    RECOVERED,
    SCHEME_VARIANTS,
    WINDOWS,
    run_campaign,
)
from repro.campaigns.scenarios import DEFAULT_SCENARIOS
from repro.experiments.result import ExperimentResult, ShapeCheck
from repro.experiments.suite import DrainSuite

CAMPAIGN_CELL_FLOOR = 200
"""The grid must stay at least this wide: the adversarial sweep is only an
argument if it covers the scenario space, not a curated subset."""


def run(suite: DrainSuite) -> ExperimentResult:
    """Adversarial campaigns: variant × scenario × window → outcome."""
    result = run_campaign(suite.config(), cache=suite.cache)

    rows = [[cell.scheme, cell.scenario, cell.window, cell.outcome,
             cell.detail]
            for cell in result.cells]

    silent = result.silent_cells()
    secure = [c for c in result.cells if not c.scheme.startswith("nosec")]
    nosec = [c for c in result.cells if c.scheme.startswith("nosec")]
    lattice_size = (len(SCHEME_VARIANTS) * len(DEFAULT_SCENARIOS)
                    * len(WINDOWS))
    checks = [
        ShapeCheck(
            "no scheme ever returns wrong data silently across the whole "
            "adversarial grid (zero silent-corruption cells)",
            not silent,
            f"{len(silent)} silent cells of {len(result.cells)}"),
        ShapeCheck(
            "the grid covers the scenario space, not a curated subset "
            f"(>= {CAMPAIGN_CELL_FLOOR} cells)",
            len(result.cells) >= CAMPAIGN_CELL_FLOOR,
            f"{len(result.cells)} cells, {len(result.skips)} skips"),
        ShapeCheck(
            "every inapplicable lattice combination is an accounted skip "
            "(cells + skips == variants x scenarios x windows)",
            result.lattice == lattice_size,
            f"{len(result.cells)} + {len(result.skips)} "
            f"== {result.lattice} of {lattice_size}"),
        ShapeCheck(
            "every secure scheme detects or exactly recovers every "
            "attack and fault at every window",
            all(c.outcome in (DETECTED, RECOVERED) for c in secure),
            f"{sum(c.outcome == DETECTED for c in secure)} detected / "
            f"{sum(c.outcome == RECOVERED for c in secure)} recovered "
            f"of {len(secure)} secure cells"),
        ShapeCheck(
            "non-secure EPD never detects: attacked episodes recover "
            "by luck or lose state unprotected",
            all(c.outcome in (RECOVERED, LOST_UNPROTECTED) for c in nosec),
            f"{sum(c.outcome == LOST_UNPROTECTED for c in nosec)} lost / "
            f"{sum(c.outcome == RECOVERED for c in nosec)} recovered "
            f"of {len(nosec)} nosec cells"),
    ]
    return ExperimentResult(
        experiment_id="ablation-campaigns",
        title="Adversarial campaigns: variant x scenario x window",
        headers=["scheme", "scenario", "window", "outcome", "detail"],
        rows=rows,
        paper_expectation="Section IV-A threat model: tampering, spoofing, "
                          "splicing, replay, and rollback of any persisted "
                          "block — at run time, mid-drain, across the "
                          "crash/recovery window, or during recovery — is "
                          "detected by MAC/tree/CHV verification; only "
                          "non-secure EPD loses state silently",
        checks=checks,
    )
