"""Shared drain-run cache for the experiment harness.

Most figures and tables consume the same five worst-case drain episodes
(one per scheme), so :class:`DrainSuite` runs each (config, scheme) pair at
most once and memoizes the report.  ``scale`` shrinks the paper configuration
uniformly (see :meth:`~repro.common.config.SystemConfig.scaled`); ``scale=1``
is the paper's Table I setup.

A suite can additionally be backed by a persistent
:class:`~repro.experiments.cache.ResultCache`: every episode is then keyed
by (config, scheme, fill, seeds, code version) and survives across runner
invocations and process boundaries — the parallel runner's workers and the
benchmarks all share one on-disk store.
"""

from repro.common.config import SystemConfig
from repro.common.units import mib
from repro.core.system import SCHEMES, SecureEpdSystem
from repro.epd.drain import DrainReport

FILL_SEED = 11
DRAIN_SEED = 23

FILL_MODES = ("sparse", "sequential")


class DrainSuite:
    """Runs and memoizes worst-case drain episodes."""

    def __init__(self, scale: int = 16, functional: bool = True,
                 llc_size: int = mib(16), cache=None):
        self.scale = scale
        self.functional = functional
        self.llc_size = llc_size
        self.cache = cache
        self._reports: dict[tuple[int, str], DrainReport] = {}
        self._episodes: dict[tuple, DrainReport] = {}

    def config(self, llc_size: int | None = None) -> SystemConfig:
        config = SystemConfig.scaled(
            self.scale, llc_size if llc_size is not None else self.llc_size)
        if not self.functional:
            from dataclasses import replace
            config = replace(
                config, security=replace(config.security, functional=False))
        return config

    def drain(self, scheme: str, llc_size: int | None = None) -> DrainReport:
        """The worst-case drain report for ``scheme`` (memoized)."""
        if scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {scheme!r}")
        key = (llc_size or self.llc_size, scheme)
        if key not in self._reports:
            self._reports[key] = self.episode(self.config(llc_size), scheme)
        return self._reports[key]

    def episode(self, config: SystemConfig, scheme: str,
                fill: str = "sparse", fill_seed: int = FILL_SEED,
                drain_seed: int = DRAIN_SEED) -> DrainReport:
        """One fill+crash drain episode over an arbitrary ``config``.

        The general entry point behind :meth:`drain` — ablations that vary
        the configuration or the fill pattern route through it so their
        episodes share the in-memory memo and the persistent cache.
        """
        if fill not in FILL_MODES:
            raise ValueError(f"unknown fill mode {fill!r}")
        memo_key = (config, scheme, fill, fill_seed, drain_seed)
        if memo_key in self._episodes:
            return self._episodes[memo_key]

        cache_key = None
        if self.cache is not None:
            from repro.experiments.cache import episode_key
            cache_key = episode_key(config, scheme, fill,
                                    fill_seed, drain_seed)
            report = self.cache.get(cache_key)
            if report is not None:
                self._episodes[memo_key] = report
                return report

        report = run_episode(config, scheme, fill, fill_seed, drain_seed)
        if cache_key is not None:
            self.cache.put(cache_key, report)
        self._episodes[memo_key] = report
        return report

    def seed_report(self, scheme: str, llc_size: int | None,
                    report: DrainReport) -> None:
        """Inject a precomputed default-path drain report (parallel prewarm)."""
        self._reports[(llc_size or self.llc_size, scheme)] = report

    def all_drains(self) -> dict[str, DrainReport]:
        """Drain reports for every scheme at the default LLC size."""
        return {scheme: self.drain(scheme) for scheme in SCHEMES}


def run_episode(config: SystemConfig, scheme: str, fill: str = "sparse",
                fill_seed: int = FILL_SEED,
                drain_seed: int = DRAIN_SEED) -> DrainReport:
    """Run one drain episode from scratch (no memoization, no cache).

    With ``REPRO_ORACLE`` set (see :mod:`repro.core.oracle`), sampled
    episodes run *twice* — scalar and batched — and any observable
    difference raises before the report is returned.
    """
    if fill not in FILL_MODES:
        raise ValueError(f"unknown fill mode {fill!r}")

    from repro.core.oracle import run_differential, should_check
    from repro.experiments.profile import phase
    if should_check():
        return run_differential(config, scheme, fill=fill,
                                fill_seed=fill_seed,
                                drain_seed=drain_seed).drain

    system = SecureEpdSystem(config, scheme=scheme)
    with phase(f"fill:{scheme}"):
        if fill == "sparse":
            system.fill_worst_case(seed=fill_seed)
        else:
            system.hierarchy.fill_sequential()
    with phase(f"drain:{scheme}"):
        return system.crash(seed=drain_seed)


def run_replay_episode(config: SystemConfig, scheme: str, trace, *,
                       epoch_ops: int | None = None, **system_kwargs):
    """Build a system and replay ``trace`` through it.

    Returns ``(system, expected)`` — the system in its post-replay state
    (ready for a subsequent ``crash()``/``recover()``) and the expected
    final content per written address.  With ``REPRO_ORACLE`` set, sampled
    replays run *twice* — scalar and epoch-batched — and any observable
    difference raises before returning (see
    :func:`repro.core.oracle.run_replay_differential`).
    """
    from repro.core.oracle import run_replay_differential, should_check
    from repro.experiments.profile import phase
    from repro.workloads.replay import DEFAULT_EPOCH_OPS, replay
    if epoch_ops is None:
        epoch_ops = DEFAULT_EPOCH_OPS
    with phase(f"replay:{scheme}"):
        if should_check():
            outcome = run_replay_differential(config, scheme, trace,
                                              epoch_ops=epoch_ops,
                                              **system_kwargs)
            return outcome.system, outcome.expected

        system = SecureEpdSystem(config, scheme=scheme, **system_kwargs)
        expected = replay(system, trace, epoch_ops=epoch_ops)
        return system, expected
