"""Shared drain-run cache for the experiment harness.

Most figures and tables consume the same five worst-case drain episodes
(one per scheme), so :class:`DrainSuite` runs each (config, scheme) pair at
most once and memoizes the report.  ``scale`` shrinks the paper configuration
uniformly (see :meth:`~repro.common.config.SystemConfig.scaled`); ``scale=1``
is the paper's Table I setup.
"""

from repro.common.config import SystemConfig
from repro.common.units import mib
from repro.core.system import SCHEMES, SecureEpdSystem
from repro.epd.drain import DrainReport

FILL_SEED = 11
DRAIN_SEED = 23


class DrainSuite:
    """Runs and memoizes worst-case drain episodes."""

    def __init__(self, scale: int = 16, functional: bool = True,
                 llc_size: int = mib(16)):
        self.scale = scale
        self.functional = functional
        self.llc_size = llc_size
        self._reports: dict[tuple[int, str], DrainReport] = {}

    def config(self, llc_size: int | None = None) -> SystemConfig:
        config = SystemConfig.scaled(
            self.scale, llc_size if llc_size is not None else self.llc_size)
        if not self.functional:
            from dataclasses import replace
            config = replace(
                config, security=replace(config.security, functional=False))
        return config

    def drain(self, scheme: str, llc_size: int | None = None) -> DrainReport:
        """The worst-case drain report for ``scheme`` (memoized)."""
        if scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {scheme!r}")
        key = (llc_size or self.llc_size, scheme)
        if key not in self._reports:
            system = SecureEpdSystem(self.config(llc_size), scheme=scheme)
            system.fill_worst_case(seed=FILL_SEED)
            self._reports[key] = system.crash(seed=DRAIN_SEED)
        return self._reports[key]

    def all_drains(self) -> dict[str, DrainReport]:
        """Drain reports for every scheme at the default LLC size."""
        return {scheme: self.drain(scheme) for scheme in SCHEMES}
