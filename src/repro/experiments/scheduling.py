"""Memory-controller scheduling vs drain cost (beyond-paper ablation).

Replays each scheme's drain trace through the FR-FCFS window model at a
realistic bank geometry.  Two findings:

* reordering helps every scheme (Horus's periodic coalesced address/MAC
  writes collide with its otherwise perfectly-interleaved data stream under
  strict FCFS — a measured, non-obvious result); and
* no scheduler closes the scheme gap: Base-LU stays several-fold above
  Horus even with an ideal reordering window, because its cost is extra
  *work*, not unlucky ordering.
"""

from repro.core.system import SecureEpdSystem
from repro.experiments.result import ExperimentResult, ShapeCheck
from repro.experiments.suite import DRAIN_SEED, FILL_SEED, DrainSuite
from repro.mem.banking import BankGeometry
from repro.mem.scheduler import schedule_trace

GEOMETRY = BankGeometry(channels=1, banks_per_channel=8,
                        command_slot_ns=2.5)
SCHEMES = ("nosec", "base-lu", "horus-slm")


def run(suite: DrainSuite) -> ExperimentResult:
    traces = {}
    for scheme in SCHEMES:
        system = SecureEpdSystem(suite.config(), scheme=scheme)
        system.nvm.trace = []
        system.fill_worst_case(seed=FILL_SEED)
        system.crash(seed=DRAIN_SEED)
        traces[scheme] = (system.config, system.nvm.trace)

    rows = []
    makespans: dict[tuple[str, str], float] = {}
    for scheme, (config, trace) in traces.items():
        for policy in ("fcfs", "frfcfs"):
            result = schedule_trace(trace, config, GEOMETRY, policy)
            makespans[(scheme, policy)] = result.makespan_ns
            rows.append([scheme, policy, result.requests,
                         result.makespan_ns / 1e6, result.reordered])

    gap_fcfs = makespans[("base-lu", "fcfs")] / makespans[("horus-slm",
                                                           "fcfs")]
    gap_frfcfs = makespans[("base-lu", "frfcfs")] / makespans[("horus-slm",
                                                               "frfcfs")]
    checks = [
        ShapeCheck(
            "FR-FCFS is never slower than FCFS for any scheme",
            all(makespans[(s, "frfcfs")] <= makespans[(s, "fcfs")] * 1.001
                for s in SCHEMES),
            "frfcfs <= fcfs for all schemes"),
        ShapeCheck(
            "scheduling does not close the Horus-vs-baseline gap",
            gap_frfcfs > 2.5,
            f"gap {gap_fcfs:.1f}x (fcfs) -> {gap_frfcfs:.1f}x (frfcfs)"),
    ]
    return ExperimentResult(
        experiment_id="ablation-scheduler",
        title="Drain makespan under FCFS vs FR-FCFS memory scheduling "
              "(8 banks)",
        headers=["scheme", "policy", "requests", "makespan ms",
                 "reordered issues"],
        rows=rows,
        paper_expectation="(beyond paper) the baseline's drain cost is "
                          "extra work, not unlucky request ordering",
        checks=checks,
    )
