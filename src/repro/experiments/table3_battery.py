"""Table III — estimated battery size needed for draining.

Battery volume = drain energy / volumetric energy density, for super
capacitors and lithium thin-film cells.  The paper reports >= 4.4x battery
size reduction with Horus.
"""

from repro.energy.battery import estimate_battery
from repro.energy.model import EnergyModel
from repro.experiments.result import ExperimentResult, ShapeCheck
from repro.experiments.suite import DrainSuite
from repro.experiments.table2_energy import SECURE_SCHEMES


def run(suite: DrainSuite) -> ExperimentResult:
    model = EnergyModel()
    estimates = {
        scheme: estimate_battery(model.breakdown(suite.drain(scheme)))
        for scheme in SECURE_SCHEMES
    }

    headers = ["technology", *SECURE_SCHEMES]
    rows = [
        ["SuperCap (cm^3)",
         *[estimates[s].supercap_cm3 for s in SECURE_SCHEMES]],
        ["Li-thin (cm^3)",
         *[estimates[s].li_thin_cm3 for s in SECURE_SCHEMES]],
    ]

    horus_max = max(estimates["horus-slm"].supercap_cm3,
                    estimates["horus-dlm"].supercap_cm3)
    reduction = min(estimates["base-lu"].supercap_cm3,
                    estimates["base-eu"].supercap_cm3) / horus_max
    li_ratio = (estimates["base-lu"].supercap_cm3
                / estimates["base-lu"].li_thin_cm3)
    checks = [
        ShapeCheck("Horus reduces battery size by >= ~4.4x (paper: 4.4x)",
                   reduction > 3.0, f"{reduction:.1f}x"),
        ShapeCheck("SuperCap volume is 100x the Li-thin volume "
                   "(density ratio)",
                   abs(li_ratio - 100.0) < 1.0, f"{li_ratio:.1f}x"),
    ]
    return ExperimentResult(
        experiment_id="table3",
        title="Estimation of battery size needed for draining",
        headers=headers,
        rows=rows,
        paper_expectation="SuperCap: 30.7 / 34.4 / 6.8 / 6.6 cm^3 at paper "
                          "scale; >= 4.4x reduction with Horus",
        checks=checks,
    )
