"""Experiment result container.

Every experiment module produces an :class:`ExperimentResult`: the table the
paper prints (headers + rows), the paper's headline expectation for that
table, and a set of named *shape checks* — the qualitative claims (who wins,
by roughly what factor) the reproduction is expected to preserve.

Results cross process boundaries (the parallel runner computes them in
worker processes) and land in the persistent result cache, so everything
here must stay picklable and :meth:`ExperimentResult.to_dict` defines the
canonical JSON-safe payload two runs are compared by.
"""

from dataclasses import dataclass, field

from repro.stats.report import format_table


@dataclass(frozen=True)
class ShapeCheck:
    """One qualitative claim and whether the measured data satisfies it."""

    claim: str
    passed: bool
    measured: str

    def __str__(self) -> str:
        status = "PASS" if self.passed else "MISS"
        return f"[{status}] {self.claim} (measured: {self.measured})"


@dataclass(frozen=True)
class ExperimentResult:
    """Output of one regenerated table or figure."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[object]]
    paper_expectation: str
    checks: list[ShapeCheck] = field(default_factory=list)

    @property
    def all_checks_pass(self) -> bool:
        return all(check.passed for check in self.checks)

    def to_dict(self) -> dict:
        """The canonical JSON-safe payload for this result.

        Serial and parallel runs must produce byte-identical payloads; the
        export layer and the equivalence tests both consume this form.
        """
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "paper_expectation": self.paper_expectation,
            "headers": list(self.headers),
            "rows": [[_json_cell(value) for value in row]
                     for row in self.rows],
            "checks": [
                {"claim": check.claim, "passed": check.passed,
                 "measured": check.measured}
                for check in self.checks
            ],
            "all_checks_pass": self.all_checks_pass,
        }

    def to_text(self) -> str:
        lines = [
            f"=== {self.experiment_id}: {self.title} ===",
            f"paper: {self.paper_expectation}",
            "",
            format_table(self.headers, self.rows),
        ]
        if self.checks:
            lines.append("")
            lines.extend(str(check) for check in self.checks)
        return "\n".join(lines)


def _json_cell(value: object) -> object:
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)
