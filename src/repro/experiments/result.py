"""Experiment result container.

Every experiment module produces an :class:`ExperimentResult`: the table the
paper prints (headers + rows), the paper's headline expectation for that
table, and a set of named *shape checks* — the qualitative claims (who wins,
by roughly what factor) the reproduction is expected to preserve.
"""

from dataclasses import dataclass, field

from repro.stats.report import format_table


@dataclass(frozen=True)
class ShapeCheck:
    """One qualitative claim and whether the measured data satisfies it."""

    claim: str
    passed: bool
    measured: str

    def __str__(self) -> str:
        status = "PASS" if self.passed else "MISS"
        return f"[{status}] {self.claim} (measured: {self.measured})"


@dataclass(frozen=True)
class ExperimentResult:
    """Output of one regenerated table or figure."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[object]]
    paper_expectation: str
    checks: list[ShapeCheck] = field(default_factory=list)

    @property
    def all_checks_pass(self) -> bool:
        return all(check.passed for check in self.checks)

    def to_text(self) -> str:
        lines = [
            f"=== {self.experiment_id}: {self.title} ===",
            f"paper: {self.paper_expectation}",
            "",
            format_table(self.headers, self.rows),
        ]
        if self.checks:
            lines.append("")
            lines.extend(str(check) for check in self.checks)
        return "\n".join(lines)
