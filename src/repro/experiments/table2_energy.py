"""Table II — estimated energy cost of draining, per contributor.

Paper rows (J): processor energy dominates and tracks drain time; Base-LU and
Base-EU cost 4.5x / 5.1x more than the Horus schemes overall.
"""

from repro.core.system import SCHEMES
from repro.energy.model import EnergyModel
from repro.experiments.result import ExperimentResult, ShapeCheck
from repro.experiments.suite import DrainSuite

SECURE_SCHEMES = ("base-lu", "base-eu", "horus-slm", "horus-dlm")


def run(suite: DrainSuite) -> ExperimentResult:
    model = EnergyModel()
    breakdowns = {scheme: model.breakdown(suite.drain(scheme))
                  for scheme in SCHEMES}

    headers = ["component", *SECURE_SCHEMES]
    rows = [
        ["Processor Energy (J)",
         *[breakdowns[s].processor_j for s in SECURE_SCHEMES]],
        ["NVM write operations (J)",
         *[breakdowns[s].nvm_write_j for s in SECURE_SCHEMES]],
        ["NVM read operations (J)",
         *[breakdowns[s].nvm_read_j for s in SECURE_SCHEMES]],
        ["Total (J)", *[breakdowns[s].total_j for s in SECURE_SCHEMES]],
    ]

    horus_max = max(breakdowns["horus-slm"].total_j,
                    breakdowns["horus-dlm"].total_j)
    lu = breakdowns["base-lu"].total_j / horus_max
    eu = breakdowns["base-eu"].total_j / horus_max
    processor_dominates = all(
        breakdowns[s].processor_j > 0.5 * breakdowns[s].total_j
        for s in SECURE_SCHEMES)
    checks = [
        ShapeCheck("Base-LU costs several times the energy of Horus "
                   "(paper: 4.5x)", lu > 3.0, f"{lu:.1f}x"),
        ShapeCheck("Base-EU costs several times the energy of Horus "
                   "(paper: 5.1x)", eu > 3.0, f"{eu:.1f}x"),
        ShapeCheck("processor energy dominates every scheme's drain energy",
                   processor_dominates, "processor > 50% for all schemes"),
        ShapeCheck("NVM read energy is negligible for Horus (no reads)",
                   breakdowns["horus-slm"].nvm_read_j < 1e-3,
                   f"{breakdowns['horus-slm'].nvm_read_j:.4f} J"),
    ]
    return ExperimentResult(
        experiment_id="table2",
        title="Estimation of energy costs during draining",
        headers=headers,
        rows=rows,
        paper_expectation="Base-LU 11.07 J / Base-EU 12.39 J vs Horus "
                          "~2.4 J at paper scale; processor energy dominates",
        checks=checks,
    )
