"""Figure 6 — motivation: memory requests to flush the hierarchy.

The paper compares a non-secure EPD flush against baseline secure flushes
with the lazy and eager tree-update schemes, broken down by request type, and
reports 10.3x (lazy) / 9.5x (eager) more memory accesses than non-secure.
"""

from repro.experiments.result import ExperimentResult, ShapeCheck
from repro.experiments.suite import DrainSuite
from repro.stats.events import ReadKind, WriteKind

SCHEMES = ("nosec", "base-eu", "base-lu")


def run(suite: DrainSuite) -> ExperimentResult:
    reports = {scheme: suite.drain(scheme) for scheme in SCHEMES}
    nosec_total = reports["nosec"].total_memory_requests

    headers = ["scheme", "data wr", "ctr rd", "ctr wr", "tree rd", "tree wr",
               "mac rd", "mac wr", "shadow wr", "total", "x nosec"]
    rows = []
    for scheme in SCHEMES:
        stats = reports[scheme].stats
        total = stats.total_memory_requests
        rows.append([
            scheme,
            stats.writes[WriteKind.DATA],
            stats.reads[ReadKind.COUNTER],
            stats.writes[WriteKind.COUNTER],
            stats.reads[ReadKind.TREE_NODE],
            stats.writes[WriteKind.TREE_NODE],
            stats.reads[ReadKind.MAC],
            stats.writes[WriteKind.DATA_MAC],
            stats.writes[WriteKind.SHADOW],
            total,
            total / nosec_total,
        ])

    lazy_factor = reports["base-lu"].total_memory_requests / nosec_total
    eager_factor = reports["base-eu"].total_memory_requests / nosec_total
    checks = [
        ShapeCheck(
            "secure lazy drain needs >> more accesses than non-secure "
            "(paper: 10.3x)",
            lazy_factor > 5.0, f"{lazy_factor:.1f}x"),
        ShapeCheck(
            "secure eager drain needs >> more accesses than non-secure "
            "(paper: 9.5x)",
            eager_factor > 5.0, f"{eager_factor:.1f}x"),
        ShapeCheck(
            "lazy drain issues more memory requests than eager",
            lazy_factor > eager_factor,
            f"lazy {lazy_factor:.1f}x vs eager {eager_factor:.1f}x"),
    ]
    return ExperimentResult(
        experiment_id="fig6",
        title="Memory requests for flushing the cache hierarchy",
        headers=headers,
        rows=rows,
        paper_expectation="Base-LU 10.3x and Base-EU 9.5x the memory "
                          "accesses of a non-secure EPD flush",
        checks=checks,
    )
