"""Run-time overhead of secure memory on an EPD system (beyond paper).

The paper's premise: at run time a secure EPD system uses a
recovery-oblivious (DRAM-like) secure memory mode, so Horus changes nothing
before the crash — all its machinery engages only at the drain.  This
experiment replays a YCSB-A workload under every scheme and checks:

* Horus's run-time cost is *identical* to the lazy baseline (same path);
* the eager scheme is the most expensive run time (per-write tree walks);
* the non-secure system bounds everything from below.
"""

from repro.core.system import SCHEMES, SecureEpdSystem
from repro.experiments.result import ExperimentResult, ShapeCheck
from repro.experiments.suite import DrainSuite
from repro.stats.runtime import RuntimePerfModel
from repro.workloads.ycsb import ycsb_trace

def run(suite: DrainSuite) -> ExperimentResult:
    config = suite.config()
    model = RuntimePerfModel(config)
    # The working set must overflow the hierarchy, or no access ever
    # reaches the secure memory controller and every scheme ties trivially.
    footprint = config.llc.num_lines * 4
    trace = ycsb_trace("a", num_ops=footprint * 2,
                       footprint_blocks=footprint, seed=87)

    breakdowns = {}
    for scheme in SCHEMES:
        system = SecureEpdSystem(config, scheme=scheme)
        breakdowns[scheme] = model.replay(system, trace)

    nosec = breakdowns["nosec"].total_cycles
    rows = []
    for scheme in SCHEMES:
        b = breakdowns[scheme]
        rows.append([scheme, b.cache_cycles, b.memory_cycles,
                     b.crypto_cycles, b.cycles_per_access,
                     b.total_cycles / nosec])

    lazy = breakdowns["base-lu"].total_cycles
    checks = [
        ShapeCheck(
            "Horus adds zero run-time overhead over the lazy baseline "
            "(identical recovery-oblivious path)",
            breakdowns["horus-slm"].total_cycles == lazy
            and breakdowns["horus-dlm"].total_cycles == lazy,
            f"lazy {lazy:,} == slm "
            f"{breakdowns['horus-slm'].total_cycles:,} == dlm "
            f"{breakdowns['horus-dlm'].total_cycles:,}"),
        ShapeCheck(
            "the eager scheme is the most expensive at run time "
            "(per-write tree walks)",
            breakdowns["base-eu"].total_cycles
            == max(b.total_cycles for b in breakdowns.values()),
            f"eager {breakdowns['base-eu'].total_cycles:,}"),
        ShapeCheck(
            "non-secure memory bounds every secure scheme from below",
            all(b.total_cycles >= nosec for b in breakdowns.values()),
            f"nosec {nosec:,}"),
        ShapeCheck(
            "lazy-scheme run-time overhead stays moderate "
            "(the DRAM-like premise)",
            lazy < 3.0 * nosec, f"{lazy / nosec:.2f}x nosec"),
    ]
    return ExperimentResult(
        experiment_id="ablation-runtime",
        title="Run-time cycles for YCSB-A under each scheme",
        headers=["scheme", "cache cycles", "memory cycles", "crypto cycles",
                 "cycles/access", "x nosec"],
        rows=rows,
        paper_expectation="(beyond paper, Section IV-B premise) Horus is "
                          "free until the crash; eager is the run-time "
                          "worst case",
        checks=checks,
    )
