"""Figures 14 & 15 — sensitivity to LLC size (8 / 16 / 32 MB).

Memory requests (Fig. 14) and MAC calculations (Fig. 15), normalized to
Base-LU at the same LLC size.  The paper reports that across all three sizes
Horus achieves at least a 7.0x reduction in memory requests and at least a
5.8x reduction in MAC calculations versus Base-LU.
"""

from repro.common.units import mib
from repro.experiments.result import ExperimentResult, ShapeCheck
from repro.experiments.suite import DrainSuite

LLC_SIZES = (mib(8), mib(16), mib(32))
SWEEP_SCHEMES = ("base-lu", "base-eu", "horus-slm", "horus-dlm")


def _sweep(suite: DrainSuite, metric) -> dict[tuple[int, str], float]:
    values = {}
    for llc in LLC_SIZES:
        for scheme in SWEEP_SCHEMES:
            values[(llc, scheme)] = metric(suite.drain(scheme, llc_size=llc))
    return values


def _rows(values: dict[tuple[int, str], float]) -> list[list[object]]:
    rows = []
    for llc in LLC_SIZES:
        base = values[(llc, "base-lu")]
        row: list[object] = [f"{llc // mib(1)}MB"]
        for scheme in SWEEP_SCHEMES:
            row.append(values[(llc, scheme)] / base)
        rows.append(row)
    return rows


def run_fig14(suite: DrainSuite) -> ExperimentResult:
    values = _sweep(suite, lambda r: r.total_memory_requests)
    rows = _rows(values)
    worst_reduction = min(
        values[(llc, "base-lu")] / max(values[(llc, "horus-slm")],
                                       values[(llc, "horus-dlm")])
        for llc in LLC_SIZES)
    checks = [
        ShapeCheck(
            "Horus reduces memory requests several-fold vs Base-LU at every "
            "LLC size (paper: >= 7.0x at full scale)",
            worst_reduction >= 4.0, f"worst case {worst_reduction:.1f}x"),
        ShapeCheck(
            "normalization holds across sizes (Horus stays flat vs Base-LU)",
            all(values[(llc, "horus-slm")] / values[(llc, "base-lu")] < 0.25
                for llc in LLC_SIZES),
            "Horus-SLM < 0.25x Base-LU at all sizes"),
    ]
    return ExperimentResult(
        experiment_id="fig14",
        title="Memory requests vs LLC size (normalized to Base-LU)",
        headers=["LLC", *SWEEP_SCHEMES],
        rows=rows,
        paper_expectation=">= 7.0x fewer memory requests than Base-LU at "
                          "8/16/32 MB LLC",
        checks=checks,
    )


def run_fig15(suite: DrainSuite) -> ExperimentResult:
    values = _sweep(suite, lambda r: r.total_macs)
    rows = _rows(values)
    worst_reduction = min(
        values[(llc, "base-lu")] / max(values[(llc, "horus-slm")],
                                       values[(llc, "horus-dlm")])
        for llc in LLC_SIZES)
    checks = [
        ShapeCheck(
            "Horus reduces MAC calculations several-fold vs Base-LU at every "
            "LLC size (paper: >= 5.8x at full scale)",
            worst_reduction >= 3.0, f"worst case {worst_reduction:.1f}x"),
    ]
    return ExperimentResult(
        experiment_id="fig15",
        title="MAC calculations vs LLC size (normalized to Base-LU)",
        headers=["LLC", *SWEEP_SCHEMES],
        rows=rows,
        paper_expectation=">= 5.8x fewer MAC calculations than Base-LU at "
                          "8/16/32 MB LLC",
        checks=checks,
    )
