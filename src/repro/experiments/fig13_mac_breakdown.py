"""Figure 13 — breakdown of MAC calculations per scheme.

Paper observations: Base-EU spends the most MACs (tree updates dominate, but
needs none to protect the tree at flush time since the root is current);
Base-LU's MACs are dominated by verification; Horus MACs are dominated by the
per-flushed-block CHV MACs, with DLM spending 1.125x SLM for the second
level.
"""

from repro.core.system import SCHEMES
from repro.experiments.result import ExperimentResult, ShapeCheck
from repro.experiments.suite import DrainSuite
from repro.stats.events import MacKind


def run(suite: DrainSuite) -> ExperimentResult:
    reports = suite.all_drains()

    headers = ["scheme", "data protect", "tree update", "verify",
               "cache tree", "chv data", "chv level2", "total"]
    rows = []
    for scheme in SCHEMES:
        macs = reports[scheme].stats.macs
        rows.append([
            scheme,
            macs[MacKind.DATA_PROTECT],
            macs[MacKind.TREE_UPDATE],
            macs[MacKind.VERIFY],
            macs[MacKind.CACHE_TREE],
            macs[MacKind.CHV_DATA],
            macs[MacKind.CHV_LEVEL2],
            reports[scheme].total_macs,
        ])

    eu = reports["base-eu"].stats
    lu = reports["base-lu"].stats
    slm = reports["horus-slm"].stats
    dlm = reports["horus-dlm"].stats
    dlm_over_slm = dlm.total_macs / slm.total_macs

    checks = [
        ShapeCheck(
            "Base-EU consumes the most MAC calculations of all schemes",
            eu.total_macs == max(reports[s].total_macs for s in SCHEMES),
            f"EU {eu.total_macs:,}"),
        ShapeCheck(
            "Base-EU tree updates dominate its MACs",
            eu.macs[MacKind.TREE_UPDATE] > eu.total_macs / 2,
            f"{eu.macs[MacKind.TREE_UPDATE]:,} of {eu.total_macs:,}"),
        ShapeCheck(
            "Base-EU needs no cache-tree MACs at flush (root is current)",
            eu.macs[MacKind.CACHE_TREE] == 0,
            f"{eu.macs[MacKind.CACHE_TREE]}"),
        ShapeCheck(
            "Base-LU MACs are dominated by verification",
            lu.macs[MacKind.VERIFY] == max(lu.macs.values()),
            f"verify {lu.macs[MacKind.VERIFY]:,} of {lu.total_macs:,}"),
        ShapeCheck(
            "Horus MACs are dominated by CHV data MACs",
            slm.macs[MacKind.CHV_DATA] > 0.8 * slm.total_macs,
            f"{slm.macs[MacKind.CHV_DATA]:,} of {slm.total_macs:,}"),
        ShapeCheck(
            "Horus-DLM spends ~1.125x the MACs of Horus-SLM",
            1.10 <= dlm_over_slm <= 1.15, f"{dlm_over_slm:.3f}x"),
    ]
    return ExperimentResult(
        experiment_id="fig13",
        title="Breakdown of MAC calculations during draining",
        headers=headers,
        rows=rows,
        paper_expectation="EU most MACs (tree updates), LU dominated by "
                          "verification, Horus dominated by CHV data MACs, "
                          "DLM = 1.125x SLM",
        checks=checks,
    )
