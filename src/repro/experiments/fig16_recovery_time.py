"""Figure 16 — Horus recovery time vs LLC size (8 MB to 128 MB).

Recovery reads the CHV back, verifies, and decrypts; the paper estimates it
from the Table I parameters and reports at most 0.51 s (SLM) / 0.48 s (DLM)
even for a 128 MB LLC.  This experiment always evaluates the estimator at
full paper scale (the analytic path is cheap); a separate integration test
pins the estimator against the functional recovery engine.
"""

from repro.common.config import SystemConfig
from repro.common.units import mib
from repro.core.recovery import estimate_recovery_seconds
from repro.experiments.result import ExperimentResult, ShapeCheck
from repro.experiments.suite import DrainSuite

LLC_SIZES_MB = (8, 16, 32, 64, 128)


def run(suite: DrainSuite) -> ExperimentResult:
    del suite  # full-scale analytic; independent of the suite's scale
    rows = []
    results: dict[tuple[int, str], float] = {}
    for size_mb in LLC_SIZES_MB:
        config = SystemConfig.paper(llc_size=mib(size_mb))
        slm = estimate_recovery_seconds(config, double_level_mac=False)
        dlm = estimate_recovery_seconds(config, double_level_mac=True)
        results[(size_mb, "slm")] = slm
        results[(size_mb, "dlm")] = dlm
        rows.append([f"{size_mb}MB", slm, dlm])

    slm128 = results[(128, "slm")]
    dlm128 = results[(128, "dlm")]
    checks = [
        ShapeCheck("Horus-SLM recovery at 128MB LLC ~ 0.51 s",
                   0.4 <= slm128 <= 0.6, f"{slm128:.3f}s"),
        ShapeCheck("Horus-DLM recovery at 128MB LLC ~ 0.48 s",
                   0.38 <= dlm128 <= 0.58, f"{dlm128:.3f}s"),
        ShapeCheck("DLM recovers faster than SLM at every size "
                   "(fewer MAC-block reads)",
                   all(results[(s, 'dlm')] < results[(s, 'slm')]
                       for s in LLC_SIZES_MB),
                   "DLM < SLM for all sizes"),
        ShapeCheck("recovery time grows ~linearly with LLC size",
                   2.5 < slm128 / results[(16, 'slm')] < 16,
                   f"128MB/16MB = {slm128 / results[(16, 'slm')]:.1f}x"),
    ]
    return ExperimentResult(
        experiment_id="fig16",
        title="Estimated Horus recovery time vs LLC size",
        headers=["LLC", "Horus-SLM (s)", "Horus-DLM (s)"],
        rows=rows,
        paper_expectation="<= 0.51 s (SLM) and <= 0.48 s (DLM) even at "
                          "128 MB LLC",
        checks=checks,
    )
