"""Serialization of experiment results to JSON and Markdown.

The runner can archive a full regeneration run (`--output DIR`), producing
machine-readable JSON (for regression tracking across library versions) and
a human-readable Markdown report mirroring EXPERIMENTS.md's structure.
"""

import json
from pathlib import Path

from repro.experiments.result import ExperimentResult


def result_to_dict(result: ExperimentResult) -> dict:
    """A JSON-safe dictionary for one experiment result."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "paper_expectation": result.paper_expectation,
        "headers": list(result.headers),
        "rows": [[_json_cell(value) for value in row]
                 for row in result.rows],
        "checks": [
            {"claim": check.claim, "passed": check.passed,
             "measured": check.measured}
            for check in result.checks
        ],
        "all_checks_pass": result.all_checks_pass,
    }


def to_json(results: list[ExperimentResult], scale: int) -> str:
    """Serialize a full run to a JSON document."""
    document = {
        "scale": scale,
        "experiments": [result_to_dict(result) for result in results],
        "total_checks": sum(len(r.checks) for r in results),
        "passed_checks": sum(
            sum(1 for c in r.checks if c.passed) for r in results),
    }
    return json.dumps(document, indent=2)


def to_markdown(results: list[ExperimentResult], scale: int) -> str:
    """Render a full run as a Markdown report."""
    lines = [
        "# Regenerated evaluation results",
        "",
        f"Configuration scale: 1/{scale} of Table I.",
        "",
    ]
    for result in results:
        lines.append(f"## {result.experiment_id}: {result.title}")
        lines.append("")
        lines.append(f"*Paper*: {result.paper_expectation}")
        lines.append("")
        lines.append("| " + " | ".join(result.headers) + " |")
        lines.append("|" + "---|" * len(result.headers))
        for row in result.rows:
            lines.append("| " + " | ".join(_md_cell(v) for v in row) + " |")
        lines.append("")
        for check in result.checks:
            mark = "x" if check.passed else " "
            lines.append(f"- [{mark}] {check.claim} — {check.measured}")
        lines.append("")
    return "\n".join(lines)


def write_results(results: list[ExperimentResult], directory: str,
                  scale: int) -> list[Path]:
    """Write ``results.json`` and ``results.md`` into ``directory``."""
    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    json_path = out / "results.json"
    md_path = out / "results.md"
    json_path.write_text(to_json(results, scale))
    md_path.write_text(to_markdown(results, scale))
    return [json_path, md_path]


def _json_cell(value: object) -> object:
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


def _md_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
