"""Serialization of experiment results to JSON and Markdown.

The runner can archive a full regeneration run (`--output DIR`), producing
machine-readable JSON (for regression tracking across library versions) and
a human-readable Markdown report mirroring EXPERIMENTS.md's structure.  When
the runner collected a :class:`~repro.experiments.profile.RunProfile`, both
documents embed it — per-experiment wall time, worker ids, and cache
hit/miss counters travel with the results they describe.
"""

import json
from pathlib import Path

from repro.experiments.result import ExperimentResult


def result_to_dict(result: ExperimentResult) -> dict:
    """A JSON-safe dictionary for one experiment result."""
    return result.to_dict()


def to_json(results: list[ExperimentResult], scale: int,
            profile=None) -> str:
    """Serialize a full run to a JSON document."""
    document = {
        "scale": scale,
        "experiments": [result_to_dict(result) for result in results],
        "total_checks": sum(len(r.checks) for r in results),
        "passed_checks": sum(
            sum(1 for c in r.checks if c.passed) for r in results),
    }
    if profile is not None:
        document["profile"] = profile.to_dict()
    return json.dumps(document, indent=2)


def to_markdown(results: list[ExperimentResult], scale: int,
                profile=None) -> str:
    """Render a full run as a Markdown report."""
    lines = [
        "# Regenerated evaluation results",
        "",
        f"Configuration scale: 1/{scale} of Table I.",
        "",
    ]
    for result in results:
        lines.append(f"## {result.experiment_id}: {result.title}")
        lines.append("")
        lines.append(f"*Paper*: {result.paper_expectation}")
        lines.append("")
        lines.append("| " + " | ".join(result.headers) + " |")
        lines.append("|" + "---|" * len(result.headers))
        for row in result.rows:
            lines.append("| " + " | ".join(_md_cell(v) for v in row) + " |")
        lines.append("")
        for check in result.checks:
            mark = "x" if check.passed else " "
            lines.append(f"- [{mark}] {check.claim} — {check.measured}")
        lines.append("")
    if profile is not None:
        lines.append("## Run profile")
        lines.append("")
        lines.append(
            f"jobs={profile.jobs}, wall {profile.wall_seconds:.2f}s, busy "
            f"{profile.busy_seconds:.2f}s; cache {profile.cache_hits} hits / "
            f"{profile.cache_misses} misses / {profile.cache_stores} stores.")
        lines.append("")
        lines.append("| unit | kind | worker | source | seconds |")
        lines.append("|---|---|---|---|---|")
        for row in profile.summary_rows():
            lines.append("| " + " | ".join(_md_cell(v) for v in row) + " |")
        lines.append("")
    return "\n".join(lines)


def write_results(results: list[ExperimentResult], directory: str,
                  scale: int, profile=None) -> list[Path]:
    """Write ``results.json`` and ``results.md`` into ``directory``."""
    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    json_path = out / "results.json"
    md_path = out / "results.md"
    json_path.write_text(to_json(results, scale, profile=profile))
    md_path.write_text(to_markdown(results, scale, profile=profile))
    return [json_path, md_path]


def _md_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
