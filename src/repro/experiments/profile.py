"""Observability for the experiment harness.

Every runner invocation (serial or parallel) produces a :class:`RunProfile`:
one :class:`TimingRecord` per scheduled unit of work — prewarmed drain
episodes and experiments alike — with its wall time, the worker that ran it,
and whether it was computed or served from the persistent cache, plus the
run's cache hit/miss/store counters.  ``--profile`` renders it as a table
and a worker-timeline chart (via the ``stats`` machinery), and the JSON /
Markdown export embeds the same data for provenance.
"""

from dataclasses import dataclass, field

from repro.stats.chart import render_spans
from repro.stats.report import format_table


@dataclass(frozen=True)
class TimingRecord:
    """One scheduled unit of work: a drain episode or an experiment."""

    name: str
    kind: str  # "episode" | "experiment"
    seconds: float
    worker: str  # "main" or the worker process id
    source: str  # "computed" | "cache"
    started: float = 0.0  # offset from the run's start, seconds


@dataclass
class RunProfile:
    """Timing + cache accounting for one runner invocation."""

    jobs: int = 1
    scale: int = 16
    records: list = field(default_factory=list)
    wall_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0

    def add(self, record: TimingRecord) -> None:
        self.records.append(record)

    def absorb_cache(self, counters: dict) -> None:
        self.cache_hits += counters.get("hits", 0)
        self.cache_misses += counters.get("misses", 0)
        self.cache_stores += counters.get("stores", 0)

    # -- derived --------------------------------------------------------------

    @property
    def busy_seconds(self) -> float:
        """Sum of per-record wall times (> wall_seconds when parallel)."""
        return sum(record.seconds for record in self.records)

    @property
    def cached_records(self) -> int:
        return sum(1 for r in self.records if r.source == "cache")

    @property
    def workers(self) -> list[str]:
        seen: list[str] = []
        for record in self.records:
            if record.worker not in seen:
                seen.append(record.worker)
        return seen

    # -- rendering ------------------------------------------------------------

    def summary_rows(self) -> list[list[object]]:
        rows = []
        for record in sorted(self.records, key=lambda r: r.started):
            rows.append([record.name, record.kind, record.worker,
                         record.source, record.seconds])
        return rows

    def render(self, width: int = 48) -> str:
        """The ``--profile`` report: summary table + worker timeline."""
        lines = [
            f"=== profile: {len(self.records)} units on jobs={self.jobs} "
            f"(scale={self.scale}) ===",
            f"wall {self.wall_seconds:.2f}s, busy {self.busy_seconds:.2f}s, "
            f"cache {self.cache_hits} hits / {self.cache_misses} misses / "
            f"{self.cache_stores} stores",
            "",
            format_table(["unit", "kind", "worker", "source", "seconds"],
                         self.summary_rows()),
        ]
        timed = [r for r in self.records if r.seconds > 0]
        if timed:
            timed.sort(key=lambda r: r.started)
            lines.append("")
            lines.append("timeline (offset from run start):")
            lines.append(render_spans(
                [f"{r.name} [{r.worker}]" for r in timed],
                [r.started for r in timed],
                [r.seconds for r in timed],
                width=width))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-safe form, embedded in the runner's export."""
        return {
            "jobs": self.jobs,
            "scale": self.scale,
            "wall_seconds": self.wall_seconds,
            "busy_seconds": self.busy_seconds,
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses,
                      "stores": self.cache_stores},
            "workers": self.workers,
            "records": [
                {"name": r.name, "kind": r.kind, "seconds": r.seconds,
                 "worker": r.worker, "source": r.source,
                 "started": r.started}
                for r in self.records
            ],
        }
