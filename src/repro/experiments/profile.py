"""Observability for the experiment harness.

Every runner invocation (serial or parallel) produces a :class:`RunProfile`:
one :class:`TimingRecord` per scheduled unit of work — prewarmed drain
episodes and experiments alike — with its wall time, the worker that ran it,
and whether it was computed or served from the persistent cache, plus the
run's cache hit/miss/store counters.  ``--profile`` renders it as a table
and a worker-timeline chart (via the ``stats`` machinery), and the JSON /
Markdown export embeds the same data for provenance.
"""

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.stats.chart import render_spans
from repro.stats.report import format_table


@dataclass(frozen=True)
class TimingRecord:
    """One scheduled unit of work: a drain episode, an experiment, or a
    sub-phase (fill/replay/drain) of one."""

    name: str
    kind: str  # "episode" | "experiment" | "phase"
    seconds: float
    worker: str  # "main" or the worker process id
    source: str  # "computed" | "cache"
    started: float = 0.0  # offset from the run's start, seconds


@dataclass
class RunProfile:
    """Timing + cache accounting for one runner invocation."""

    jobs: int = 1
    scale: int = 16
    records: list = field(default_factory=list)
    wall_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0

    def add(self, record: TimingRecord) -> None:
        self.records.append(record)

    def absorb_cache(self, counters: dict) -> None:
        self.cache_hits += counters.get("hits", 0)
        self.cache_misses += counters.get("misses", 0)
        self.cache_stores += counters.get("stores", 0)

    # -- derived --------------------------------------------------------------

    @property
    def busy_seconds(self) -> float:
        """Sum of per-record wall times (> wall_seconds when parallel)."""
        return sum(record.seconds for record in self.records)

    @property
    def cached_records(self) -> int:
        return sum(1 for r in self.records if r.source == "cache")

    @property
    def workers(self) -> list[str]:
        seen: list[str] = []
        for record in self.records:
            if record.worker not in seen:
                seen.append(record.worker)
        return seen

    # -- rendering ------------------------------------------------------------

    def summary_rows(self) -> list[list[object]]:
        rows = []
        for record in sorted(self.records, key=lambda r: r.started):
            rows.append([record.name, record.kind, record.worker,
                         record.source, record.seconds])
        return rows

    def render(self, width: int = 48) -> str:
        """The ``--profile`` report: summary table + worker timeline."""
        lines = [
            f"=== profile: {len(self.records)} units on jobs={self.jobs} "
            f"(scale={self.scale}) ===",
            f"wall {self.wall_seconds:.2f}s, busy {self.busy_seconds:.2f}s, "
            f"cache {self.cache_hits} hits / {self.cache_misses} misses / "
            f"{self.cache_stores} stores",
            "",
            format_table(["unit", "kind", "worker", "source", "seconds"],
                         self.summary_rows()),
        ]
        timed = [r for r in self.records if r.seconds > 0]
        if timed:
            timed.sort(key=lambda r: r.started)
            lines.append("")
            lines.append("timeline (offset from run start):")
            lines.append(render_spans(
                [f"{r.name} [{r.worker}]" for r in timed],
                [r.started for r in timed],
                [r.seconds for r in timed],
                width=width))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-safe form, embedded in the runner's export."""
        return {
            "jobs": self.jobs,
            "scale": self.scale,
            "wall_seconds": self.wall_seconds,
            "busy_seconds": self.busy_seconds,
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses,
                      "stores": self.cache_stores},
            "workers": self.workers,
            "records": [
                {"name": r.name, "kind": r.kind, "seconds": r.seconds,
                 "worker": r.worker, "source": r.source,
                 "started": r.started}
                for r in self.records
            ],
        }


# -- phase spans --------------------------------------------------------------
#
# The timeline above shows whole units; the phase hooks below subdivide a
# unit into its interesting stages — hierarchy fill, trace replay, drain —
# as extra ``kind="phase"`` records on the same profile, so --profile shows
# where inside an episode the time went.  Capture is in-process only:
# phases timed inside pool workers are not propagated.

_PHASES: RunProfile | None = None
_PHASE_START = 0.0
_PHASE_WORKER = "main"


@contextmanager
def capture_phases(profile: RunProfile, run_start: float,
                   worker: str = "main"):
    """Route :func:`phase` spans into ``profile`` for the duration."""
    global _PHASES, _PHASE_START, _PHASE_WORKER
    previous = (_PHASES, _PHASE_START, _PHASE_WORKER)
    _PHASES, _PHASE_START, _PHASE_WORKER = profile, run_start, worker
    try:
        yield profile
    finally:
        _PHASES, _PHASE_START, _PHASE_WORKER = previous


@contextmanager
def phase(name: str):
    """Time one sub-phase (e.g. ``fill:horus-dlm``, ``replay:base-eu``).

    A no-op unless a :func:`capture_phases` context is active, so the
    episode entry points can annotate unconditionally.
    """
    if _PHASES is None:
        yield
        return
    begin = time.perf_counter()
    try:
        yield
    finally:
        _PHASES.add(TimingRecord(
            name=name, kind="phase",
            seconds=time.perf_counter() - begin,
            worker=_PHASE_WORKER, source="computed",
            started=begin - _PHASE_START))


def capturing() -> bool:
    """Whether a :func:`capture_phases` context is active.

    Hot paths that would pay per-iteration timer reads (epoch-batched
    replay times three sub-steps per epoch) check this once and skip the
    bookkeeping entirely outside ``--profile`` runs.
    """
    return _PHASES is not None


def record_span(name: str, seconds: float, started_at: float) -> None:
    """Record one pre-measured span (``kind="phase"``) on the active profile.

    The aggregate counterpart of :func:`phase` for sub-phases whose
    fragments interleave (e.g. the ``cache:`` / ``mem:`` / ``resolve:``
    steps of every replay epoch): the caller accumulates wall time across
    fragments and records each total once.  ``started_at`` is the
    ``time.perf_counter()`` value the span should anchor to on the
    timeline.  A no-op when no capture is active.
    """
    if _PHASES is None:
        return
    _PHASES.add(TimingRecord(
        name=name, kind="phase", seconds=seconds,
        worker=_PHASE_WORKER, source="computed",
        started=started_at - _PHASE_START))
