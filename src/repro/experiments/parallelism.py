"""Drain time vs memory parallelism (beyond-paper ablation).

Replays each scheme's captured drain request trace against increasing
channel/bank parallelism.  Two results matter for hold-up sizing:

* both the serialized (additive) model and the optimistic banked bound
  preserve the scheme ordering — Horus's advantage is structural, not a
  bandwidth artifact; and
* Horus's sequential CHV stream interleaves perfectly across banks, so it
  converges to the command-bus bound quickly, while the baselines' traffic
  keeps some bank skew.
"""

from repro.core.system import SecureEpdSystem
from repro.experiments.result import ExperimentResult, ShapeCheck
from repro.experiments.suite import DRAIN_SEED, FILL_SEED, DrainSuite
from repro.mem.banking import BankGeometry, parallel_speedup, replay_makespan

GEOMETRIES = (
    BankGeometry(channels=1, banks_per_channel=1),
    BankGeometry(channels=1, banks_per_channel=8),
    BankGeometry(channels=4, banks_per_channel=8),
)
SCHEMES = ("nosec", "base-lu", "horus-slm")


def _drain_trace(suite: DrainSuite, scheme: str) -> tuple:
    system = SecureEpdSystem(suite.config(), scheme=scheme)
    system.nvm.trace = []
    system.fill_worst_case(seed=FILL_SEED)
    system.crash(seed=DRAIN_SEED)
    return system.config, system.nvm.trace


def run(suite: DrainSuite) -> ExperimentResult:
    traces = {scheme: _drain_trace(suite, scheme) for scheme in SCHEMES}

    rows = []
    makespans: dict[tuple[str, int], float] = {}
    for scheme in SCHEMES:
        config, trace = traces[scheme]
        for geometry in GEOMETRIES:
            result = replay_makespan(trace, config, geometry)
            makespans[(scheme, geometry.total_banks)] = result.makespan_ns
            rows.append([
                scheme, geometry.total_banks, result.requests,
                result.makespan_ns / 1e6,
                parallel_speedup(trace, config, geometry),
            ])

    banks_max = GEOMETRIES[-1].total_banks
    lu_over_horus_serial = (makespans[("base-lu", 1)]
                            / makespans[("horus-slm", 1)])
    lu_over_horus_banked = (makespans[("base-lu", banks_max)]
                            / makespans[("horus-slm", banks_max)])
    horus_speedup = (makespans[("horus-slm", 1)]
                     / makespans[("horus-slm", banks_max)])
    checks = [
        ShapeCheck(
            "scheme ordering survives memory parallelism (Horus still "
            "several-fold cheaper at max banks)",
            lu_over_horus_banked > 2.0,
            f"serial {lu_over_horus_serial:.1f}x -> banked "
            f"{lu_over_horus_banked:.1f}x"),
        ShapeCheck(
            "banking recovers substantial drain time for Horus's "
            "sequential CHV stream",
            horus_speedup > 4.0, f"{horus_speedup:.1f}x at {banks_max} banks"),
        ShapeCheck(
            "every scheme's banked makespan is bounded by its serialized "
            "time",
            all(makespans[(s, banks_max)] <= makespans[(s, 1)]
                for s in SCHEMES),
            "banked <= serial for all schemes"),
    ]
    return ExperimentResult(
        experiment_id="ablation-parallelism",
        title="Drain makespan vs memory channel/bank parallelism "
              "(optimistic bound)",
        headers=["scheme", "banks", "requests", "makespan ms", "speedup"],
        rows=rows,
        paper_expectation="(beyond paper) hold-up ordering is structural: "
                          "parallel memory helps every scheme but closes no "
                          "gap",
        checks=checks,
    )
