"""The paper's headline claims, in one table.

Abstract/conclusion numbers: Horus reduces memory requests by 8x and MAC
calculations by 7.8x versus the lazy baseline, cutting drain time (hence
hold-up budget) by 5x; secure EPD without Horus needs 10.3x the memory
accesses of non-secure EPD.
"""

from repro.core.chv import expected_chv_bytes
from repro.experiments.result import ExperimentResult, ShapeCheck
from repro.experiments.suite import DrainSuite
from repro.mem.regions import MemoryLayout


def run(suite: DrainSuite) -> ExperimentResult:
    reports = suite.all_drains()
    nosec = reports["nosec"]
    lu = reports["base-lu"]
    slm = reports["horus-slm"]
    dlm = reports["horus-dlm"]

    request_reduction = lu.total_memory_requests / slm.total_memory_requests
    mac_reduction = lu.total_macs / slm.total_macs
    time_reduction = lu.seconds / slm.seconds
    motivation = lu.total_memory_requests / nosec.total_memory_requests
    horus_vs_nosec = slm.seconds / nosec.seconds

    config = suite.config()
    chv_bytes = MemoryLayout(config).chv.size
    chv_factor = chv_bytes / expected_chv_bytes(config)

    rows = [
        ["secure-EPD motivation (Base-LU vs nosec requests)", "10.3x",
         f"{motivation:.2f}x"],
        ["Horus memory-request reduction vs Base-LU", "8x",
         f"{request_reduction:.2f}x"],
        ["Horus MAC-calculation reduction vs Base-LU", "7.8x",
         f"{mac_reduction:.2f}x"],
        ["Horus drain-time reduction vs Base-LU", "5x",
         f"{time_reduction:.2f}x"],
        ["Horus drain time vs non-secure EPD", "1.7x",
         f"{horus_vs_nosec:.2f}x"],
        ["CHV size vs Section IV-D formula", "1.00x", f"{chv_factor:.3f}x"],
        ["Horus-DLM MACs vs Horus-SLM", "1.125x",
         f"{dlm.total_macs / slm.total_macs:.3f}x"],
    ]

    checks = [
        ShapeCheck("memory-request reduction lands near the paper's 8x",
                   6.0 <= request_reduction, f"{request_reduction:.1f}x"),
        ShapeCheck("MAC reduction lands near the paper's 7.8x",
                   5.5 <= mac_reduction, f"{mac_reduction:.1f}x"),
        ShapeCheck("drain-time reduction lands near the paper's 5x",
                   4.0 <= time_reduction, f"{time_reduction:.1f}x"),
        ShapeCheck("CHV sizing matches the Section IV-D formula within 2%",
                   0.98 <= chv_factor <= 1.05, f"{chv_factor:.3f}x"),
    ]
    return ExperimentResult(
        experiment_id="headline",
        title="Headline claims (abstract & conclusion)",
        headers=["claim", "paper", "measured"],
        rows=rows,
        paper_expectation="8x fewer memory requests, 7.8x fewer MACs, "
                          "5x faster drain vs Base-LU",
        checks=checks,
    )
