"""Shard-count scaling: aggregate throughput and drain energy (beyond paper).

Partitioning the NVM across N independent controller shards buys run-time
parallelism (each shard replays only its routed sub-trace, so fleet wall
time is the slowest shard) at a drain-energy cost (every shard drains its
own metadata floor).  This ablation sweeps the fleet size 1 -> 16 over one
fixed multi-tenant workload and reports both curves, plus the cross-shard
drain wall under each power policy:

* ``simultaneous`` wall is the slowest shard, ``staggered`` the sum, and a
  ``budgeted`` schedule under half the fleet's draw lands in between;
* aggregate throughput grows with the fleet (the routed sub-traces shrink);
* routing is total: the per-shard op counts sum to the plan's op count.
"""

from repro.common.units import cycles_to_seconds
from repro.experiments.result import ExperimentResult, ShapeCheck
from repro.experiments.suite import DRAIN_SEED, FILL_SEED, DrainSuite
from repro.sharding.drain import make_drain_policy, shard_power_w
from repro.sharding.pool import make_keyring, make_plan, ShardRunSpec
from repro.sharding.system import ShardedSecureSystem
from repro.stats.runtime import RuntimePerfModel
from repro.workloads.tenantmix import TenantMixer

SHARD_COUNTS = (1, 2, 4, 8, 16)
SHARD_SCHEME = "horus-dlm"
SHARD_TENANTS = 32
SHARD_OPS = 4096


def _fleet_episode(suite: DrainSuite, num_shards: int) -> dict[str, float]:
    """Replay + coordinated drain for one fleet size; measured curves."""
    config = suite.config()
    model = RuntimePerfModel(config)
    plan = make_plan(config, num_shards, SHARD_TENANTS, SHARD_OPS,
                     master_seed=FILL_SEED)
    spec = ShardRunSpec(config=config, num_shards=num_shards,
                        scheme=SHARD_SCHEME, plan=plan,
                        drain_seed=DRAIN_SEED)
    system = ShardedSecureSystem(config, num_shards=num_shards,
                                 scheme=SHARD_SCHEME,
                                 keyring=make_keyring(spec))
    parts = system.router.split(TenantMixer(plan).mix())

    # Replay each shard's sub-trace and attribute run-time cycles per shard;
    # the fleet's wall clock is its slowest shard (shards share nothing).
    shard_seconds = []
    for shard, sub_trace in enumerate(parts):
        if not sub_trace:
            shard_seconds.append(0.0)
            continue
        breakdown = model.replay(system.shards[shard], sub_trace)
        shard_seconds.append(cycles_to_seconds(breakdown.total_cycles,
                                               config.frequency_hz))
    replay_wall = max(shard_seconds)

    # One coordinated drain; the policies only re-schedule the measured
    # episodes, so all three walls derive from the same reports.
    drain = system.crash(seed=DRAIN_SEED)
    powers = [shard_power_w(report, energy)
              for report, energy in zip(drain.reports, drain.energies)]
    budget_w = max(max(powers), sum(powers) / 2.0)
    staggered = make_drain_policy("staggered") \
        .schedule(drain.reports, drain.energies)
    budgeted = make_drain_policy("budgeted", budget_w) \
        .schedule(drain.reports, drain.energies)
    routed_ops = sum(len(part) for part in parts)
    return {
        "routed_ops": float(routed_ops),
        "replay_wall_s": replay_wall,
        "ops_per_s": SHARD_OPS / replay_wall if replay_wall else 0.0,
        "energy_j": drain.energy_j,
        "wall_simultaneous_s": drain.wall_seconds,
        "wall_staggered_s": staggered.wall_seconds,
        "wall_budgeted_s": budgeted.wall_seconds,
        "peak_simultaneous_w": drain.peak_power_w,
        "peak_budgeted_w": budgeted.peak_power_w,
        "budget_w": budget_w,
        "max_shard_drain_s": max(r.seconds for r in drain.reports),
        "sum_shard_drain_s": sum(r.seconds for r in drain.reports),
    }


def run(suite: DrainSuite) -> ExperimentResult:
    curves = {n: _fleet_episode(suite, n) for n in SHARD_COUNTS}

    rows = []
    for n in SHARD_COUNTS:
        c = curves[n]
        rows.append([
            n, int(c["routed_ops"]),
            c["replay_wall_s"] * 1e3, c["ops_per_s"] / 1e3,
            c["energy_j"],
            c["wall_simultaneous_s"] * 1e3,
            c["wall_budgeted_s"] * 1e3,
            c["wall_staggered_s"] * 1e3,
            c["peak_simultaneous_w"],
        ])

    first = curves[SHARD_COUNTS[0]]
    last = curves[SHARD_COUNTS[-1]]
    rel = 1e-9
    checks = [
        ShapeCheck(
            "routing is total: every fleet size replays exactly the "
            "plan's op count",
            all(curves[n]["routed_ops"] == SHARD_OPS for n in SHARD_COUNTS),
            f"{int(first['routed_ops'])} ops at every fleet size"),
        ShapeCheck(
            "aggregate throughput scales with the fleet (16 shards beat "
            "one shard by >2x)",
            last["ops_per_s"] > 2.0 * first["ops_per_s"],
            f"{first['ops_per_s'] / 1e3:.1f} -> "
            f"{last['ops_per_s'] / 1e3:.1f} kops/s"),
        ShapeCheck(
            "drain energy grows with the fleet (each shard pays its own "
            "metadata floor)",
            last["energy_j"] > first["energy_j"],
            f"{first['energy_j']:.3f} J -> {last['energy_j']:.3f} J"),
        ShapeCheck(
            "simultaneous wall is the slowest shard; staggered wall is "
            "the sum",
            all(abs(curves[n]["wall_simultaneous_s"]
                    - curves[n]["max_shard_drain_s"])
                <= rel + rel * curves[n]["max_shard_drain_s"]
                and abs(curves[n]["wall_staggered_s"]
                        - curves[n]["sum_shard_drain_s"])
                <= rel + rel * curves[n]["sum_shard_drain_s"]
                for n in SHARD_COUNTS),
            f"at 16 shards: {last['wall_simultaneous_s'] * 1e3:.2f} ms vs "
            f"{last['wall_staggered_s'] * 1e3:.2f} ms"),
        ShapeCheck(
            "the budgeted wall interpolates between the extremes and "
            "respects its watt cap",
            all(curves[n]["wall_simultaneous_s"] - rel
                <= curves[n]["wall_budgeted_s"]
                <= curves[n]["wall_staggered_s"] + rel
                and curves[n]["peak_budgeted_w"]
                <= curves[n]["budget_w"] * (1.0 + rel)
                for n in SHARD_COUNTS),
            f"at 16 shards: {last['wall_budgeted_s'] * 1e3:.2f} ms under "
            f"{last['budget_w']:.1f} W"),
    ]
    return ExperimentResult(
        experiment_id="ablation-shards",
        title=f"Fleet scaling 1 -> {SHARD_COUNTS[-1]} shards "
              f"({SHARD_SCHEME}, {SHARD_TENANTS} tenants)",
        headers=["shards", "ops", "replay ms", "kops/s", "drain J",
                 "wall sim ms", "wall budg ms", "wall stag ms", "peak W"],
        rows=rows,
        paper_expectation="(beyond paper, Section VI direction) sharding "
                          "buys run-time parallelism and pays a per-shard "
                          "drain-energy floor; power policies trade wall "
                          "time against peak draw",
        checks=checks,
    )
