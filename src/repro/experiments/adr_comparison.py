"""ADR vs EPD: where the security cost lives (beyond-paper experiment).

The paper's premise (Sections I-II): ADR systems pay security-metadata costs
on every persist at run time; EPD systems run recovery-oblivious (DRAM-like)
and pay only at the drain — and Horus then shrinks that drain payment.  This
experiment quantifies the whole trade-off on one workload:

* run-time — persist-path memory requests and serialized cycles per
  durable update (ADR) vs zero extra (EPD);
* crash-time — hold-up budget: WPQ-only (ADR) vs full hierarchy drain
  (EPD baselines vs Horus).
"""

from repro.core.system import SecureEpdSystem
from repro.epd.adr import AdrSecureSystem
from repro.epd.bbb import BbbSecureSystem
from repro.experiments.result import ExperimentResult, ShapeCheck
from repro.experiments.suite import DRAIN_SEED, DrainSuite
from repro.workloads.generators import kvstore_trace
from repro.workloads.trace import OpKind

NUM_OPS = 2000


def run(suite: DrainSuite) -> ExperimentResult:
    config = suite.config()
    trace = kvstore_trace(NUM_OPS, footprint_blocks=256,
                          write_fraction=0.5, seed=77)

    # --- ADR: persist after every durable write -------------------------
    adr = AdrSecureSystem(config)
    for op in trace:
        if op.kind is OpKind.WRITE:
            adr.write(op.address, op.data)
            adr.persist(op.address)
        else:
            adr.read(op.address)
    adr_requests = adr.stats.total_memory_requests
    adr_cycles = adr.persist_critical_cycles()

    # --- ADR + Dolos: persists staged through the minor security unit ---
    from repro.epd.dolos import DolosAdrSystem
    dolos = DolosAdrSystem(config)
    for op in trace:
        if op.kind is OpKind.WRITE:
            dolos.write(op.address, op.data)
            dolos.persist(op.address)
        else:
            dolos.read(op.address)
    dolos_cycles = dolos.persist_critical_cycles()

    # --- BBB: implicit persistence through a tiny backed buffer ---------
    bbb = BbbSecureSystem(config)
    for op in trace:
        if op.kind is OpKind.WRITE:
            bbb.write(op.address, op.data)
        else:
            bbb.read(op.address)
    bbb_requests = bbb.stats.total_memory_requests
    bbb_drained = 0  # measured below, after the run

    # --- EPD: same workload, persistence is cache residency -------------
    epd = SecureEpdSystem(config, scheme="horus-dlm")
    for op in trace:
        if op.kind is OpKind.WRITE:
            epd.write(op.address, op.data)
        else:
            epd.read(op.address)
    epd_requests = epd.stats.total_memory_requests
    drain = epd.crash(seed=DRAIN_SEED)
    bbb_drained = bbb.crash()

    persists = max(1, adr.persists)
    rows = [
        ["ADR (persist per write)", adr.persists, adr_requests,
         adr_requests / persists, adr_cycles / persists,
         "WPQ only (~0)"],
        ["ADR + Dolos MSU", dolos.persists,
         dolos.stats.total_memory_requests,
         dolos.stats.total_memory_requests / max(1, dolos.persists),
         dolos_cycles / max(1, dolos.persists),
         f"{dolos.staged_entries} staged entries"],
        ["BBB (64-line backed buffer)", bbb.writes, bbb_requests,
         bbb_requests / max(1, bbb.writes), 0.0,
         f"{bbb_drained} bbuf lines"],
        ["EPD + Horus-DLM", 0, epd_requests,
         epd_requests / persists, 0.0,
         f"{drain.total_memory_requests:,} reqs at drain"],
    ]

    checks = [
        ShapeCheck(
            "ADR pays security memory requests on every persist; EPD pays "
            "almost none at run time",
            adr_requests > 5 * epd_requests,
            f"ADR {adr_requests:,} vs EPD {epd_requests:,}"),
        ShapeCheck(
            "Dolos cuts the per-persist critical path vs plain ADR "
            "(the MSU insight Horus scales up)",
            dolos_cycles / max(1, dolos.persists)
            < 0.9 * (adr_cycles / persists),
            f"{dolos_cycles / max(1, dolos.persists):.0f} vs "
            f"{adr_cycles / persists:.0f} cycles/persist"),
        ShapeCheck(
            "BBB sits between ADR and EPD in run-time cost",
            epd_requests < bbb_requests < adr_requests,
            f"ADR {adr_requests:,} > BBB {bbb_requests:,} "
            f"> EPD {epd_requests:,}"),
        ShapeCheck(
            "BBB's crash budget is its buffer, not the hierarchy",
            bbb_drained <= bbb.bbuf_lines,
            f"{bbb_drained} lines drained"),
        ShapeCheck(
            "the EPD cost moved to the drain episode (which Horus keeps at "
            "~1.25x the dirty lines)",
            drain.total_memory_requests < 1.5 * (drain.flushed_blocks
                                                 + drain.metadata_blocks),
            f"{drain.total_memory_requests:,} requests for "
            f"{drain.flushed_blocks:,} lines"),
        ShapeCheck(
            "ADR persists serialize security latency (> 1000 cycles each)",
            adr_cycles / persists > 1000,
            f"{adr_cycles / persists:.0f} cycles/persist"),
    ]
    return ExperimentResult(
        experiment_id="ablation-adr-vs-epd",
        title="Where the security cost lives: per-persist (ADR) vs "
              "per-drain (EPD)",
        headers=["system", "persists", "runtime mem requests",
                 "reqs/persist", "cycles/persist", "crash budget"],
        rows=rows,
        paper_expectation="(beyond paper, Sections I-II) EPD removes the "
                          "per-persist security tax; Horus keeps the drain "
                          "budget it creates small",
        checks=checks,
    )
