"""Drain budget vs recovery time: the availability trade-off (beyond paper).

The paper's stated goals include identifying "the trade-offs for back up
power budget, run-time performance overheads, and recovery time (i.e.,
availability)".  This experiment measures both sides of that trade for the
three recoverable designs built here:

* Base-LU + Anubis-style shadow dump — pays shadow writes at drain, recovers
  by reloading the dump;
* Base-LU + Osiris stop-loss — pays nothing extra at drain, recovers by
  trial-verifying counters and rebuilding the tree;
* Horus — pays the (small) CHV at drain and replays it at recovery.
"""

from repro.core.system import SecureEpdSystem
from repro.experiments.result import ExperimentResult, ShapeCheck
from repro.experiments.suite import DRAIN_SEED, FILL_SEED, DrainSuite


def _cycle(suite: DrainSuite, scheme: str, **kwargs):
    system = SecureEpdSystem(suite.config(), scheme=scheme, **kwargs)
    system.fill_worst_case(seed=FILL_SEED)
    drain = system.crash(seed=DRAIN_SEED)
    recovery = system.recover()
    return drain, recovery


def run(suite: DrainSuite) -> ExperimentResult:
    variants = {
        "base-lu (shadow)": _cycle(suite, "base-lu"),
        "base-lu (osiris)": _cycle(suite, "base-lu", osiris_stop_loss=8),
        "horus-dlm": _cycle(suite, "horus-dlm"),
    }

    rows = []
    for name, (drain, recovery) in variants.items():
        rows.append([
            name,
            drain.total_memory_requests,
            drain.milliseconds,
            recovery.stats.total_memory_requests,
            recovery.stats.total_macs,
            recovery.milliseconds,
        ])

    shadow_drain, shadow_rec = variants["base-lu (shadow)"]
    osiris_drain, osiris_rec = variants["base-lu (osiris)"]
    horus_drain, horus_rec = variants["horus-dlm"]

    checks = [
        ShapeCheck(
            "Osiris shifts cost from the drain to recovery (cheaper drain, "
            "costlier recovery than the shadow dump)",
            osiris_drain.total_memory_requests
            <= shadow_drain.total_memory_requests
            and osiris_rec.stats.total_macs > shadow_rec.stats.total_macs,
            f"drain {osiris_drain.total_memory_requests:,} vs "
            f"{shadow_drain.total_memory_requests:,}; recovery MACs "
            f"{osiris_rec.stats.total_macs:,} vs "
            f"{shadow_rec.stats.total_macs:,}"),
        ShapeCheck(
            "Horus dominates both baselines on the drain (hold-up) side",
            horus_drain.total_memory_requests
            < 0.5 * min(shadow_drain.total_memory_requests,
                        osiris_drain.total_memory_requests),
            f"{horus_drain.total_memory_requests:,} requests"),
        ShapeCheck(
            "Horus recovery stays cheaper than Osiris reconstruction",
            horus_rec.stats.total_macs < osiris_rec.stats.total_macs,
            f"{horus_rec.stats.total_macs:,} vs "
            f"{osiris_rec.stats.total_macs:,} MACs"),
    ]
    return ExperimentResult(
        experiment_id="ablation-availability",
        title="Drain budget vs recovery cost per recoverable design",
        headers=["design", "drain reqs", "drain ms", "recovery reqs",
                 "recovery MACs", "recovery ms"],
        rows=rows,
        paper_expectation="(beyond paper, Section I goals) hold-up budget "
                          "and recovery time trade against each other; "
                          "Horus improves both",
        checks=checks,
    )
