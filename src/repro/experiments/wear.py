"""NVM wear distribution across repeated drain episodes (beyond paper).

Section II-D notes that security-metadata writes accelerate NVM wear-out.
This experiment crashes and drains the same worst-case hierarchy repeatedly
and compares *where* the write endurance is spent:

* the baselines scatter metadata writes across the counter/tree/MAC
  regions in-place, multiplying the per-episode write volume ~5x;
* Horus concentrates writes into the (small, reserved) CHV, rewriting the
  same blocks each episode — fewer total writes, but a hot region that a
  deployment would wear-level (e.g. by rotating the vault base, which the
  positional DC addressing permits).
"""

from repro.core.system import SecureEpdSystem
from repro.experiments.result import ExperimentResult, ShapeCheck
from repro.experiments.suite import DrainSuite
from repro.mem.wear import WearTracker

EPISODES = 4


def _wear_after_episodes(suite: DrainSuite, scheme: str) -> tuple:
    system = SecureEpdSystem(suite.config(), scheme=scheme)
    system.nvm.wear = WearTracker(system.layout)
    for episode in range(EPISODES):
        system.fill_worst_case(seed=episode)
        system.crash(seed=100 + episode)
        # Every scheme must run its recovery before memory is usable again
        # (Base-LU restores its Anubis-style shadow; Horus replays the CHV).
        system.recover()
    return system.nvm.wear


def run(suite: DrainSuite) -> ExperimentResult:
    trackers = {scheme: _wear_after_episodes(suite, scheme)
                for scheme in ("base-lu", "horus-slm")}

    headers = ["scheme", "region", "blocks written", "total writes",
               "max/block", "mean/block"]
    rows = []
    for scheme, tracker in trackers.items():
        for wear in tracker.region_wear():
            if wear.total_writes == 0:
                continue
            rows.append([scheme, wear.region, wear.blocks_written,
                         wear.total_writes, wear.max_writes_per_block,
                         wear.mean_writes_per_block])

    lu = trackers["base-lu"]
    horus = trackers["horus-slm"]
    checks = [
        ShapeCheck(
            "baseline spends several times the total write endurance of "
            "Horus per episode",
            lu.total_writes > 3 * horus.total_writes,
            f"{lu.total_writes:,} vs {horus.total_writes:,} writes"),
        ShapeCheck(
            "baseline wear concentrates in security-metadata regions",
            (lu.wear_of('counters').total_writes
             + lu.wear_of('tree').total_writes
             + lu.wear_of('macs').total_writes)
            > lu.wear_of('data').total_writes,
            "metadata > data writes for base-lu"),
        ShapeCheck(
            "Horus wear lands in the CHV, rewritten once per episode",
            horus.wear_of('chv').max_writes_per_block <= EPISODES,
            f"max {horus.wear_of('chv').max_writes_per_block} writes/block "
            f"over {EPISODES} episodes"),
    ]
    return ExperimentResult(
        experiment_id="ablation-wear",
        title="NVM write-endurance distribution over repeated drains",
        headers=headers,
        rows=rows,
        paper_expectation="(beyond paper, Section II-D) baselines multiply "
                          "and scatter metadata wear; Horus bounds wear to "
                          "the reserved CHV",
        checks=checks,
    )
