"""Regression comparison between two archived experiment runs.

`runner --output DIR` archives a run as ``results.json``; this module diffs
two such documents so simulator changes can be reviewed quantitatively:
which experiments' numbers moved, by how much, and whether any shape check
flipped.

Command line::

    python -m repro.experiments.regression old/results.json new/results.json
"""

import json
import sys
from dataclasses import dataclass, field
from pathlib import Path

DEFAULT_TOLERANCE = 0.01


@dataclass(frozen=True)
class CellDrift:
    """One numeric table cell that moved beyond tolerance."""

    experiment_id: str
    row_label: str
    column: str
    old: float
    new: float

    @property
    def relative_change(self) -> float:
        if self.old == 0:
            return float("inf") if self.new else 0.0
        return (self.new - self.old) / abs(self.old)

    def __str__(self) -> str:
        return (f"{self.experiment_id}[{self.row_label}].{self.column}: "
                f"{self.old:,.4g} -> {self.new:,.4g} "
                f"({self.relative_change:+.1%})")


@dataclass(frozen=True)
class RegressionReport:
    """Outcome of comparing two runs."""

    drifts: list[CellDrift] = field(default_factory=list)
    check_flips: list[str] = field(default_factory=list)
    missing_experiments: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (self.drifts or self.check_flips
                    or self.missing_experiments)

    def to_text(self) -> str:
        if self.clean:
            return "no regressions: all tables match within tolerance"
        lines = []
        if self.missing_experiments:
            lines.append("experiments missing from the new run: "
                         + ", ".join(self.missing_experiments))
        lines.extend(f"check flipped: {flip}" for flip in self.check_flips)
        lines.extend(str(drift) for drift in self.drifts)
        return "\n".join(lines)


def compare_runs(old: dict, new: dict,
                 tolerance: float = DEFAULT_TOLERANCE) -> RegressionReport:
    """Compare two parsed ``results.json`` documents."""
    new_by_id = {e["experiment_id"]: e for e in new["experiments"]}
    drifts: list[CellDrift] = []
    flips: list[str] = []
    missing: list[str] = []

    for old_exp in old["experiments"]:
        exp_id = old_exp["experiment_id"]
        new_exp = new_by_id.get(exp_id)
        if new_exp is None:
            missing.append(exp_id)
            continue
        drifts.extend(_diff_tables(exp_id, old_exp, new_exp, tolerance))
        flips.extend(_diff_checks(exp_id, old_exp, new_exp))
    return RegressionReport(drifts=drifts, check_flips=flips,
                            missing_experiments=missing)


def _diff_tables(exp_id: str, old_exp: dict, new_exp: dict,
                 tolerance: float) -> list[CellDrift]:
    drifts = []
    headers = old_exp["headers"]
    new_rows = {str(row[0]): row for row in new_exp["rows"]}
    for old_row in old_exp["rows"]:
        label = str(old_row[0])
        new_row = new_rows.get(label)
        if new_row is None or len(new_row) != len(old_row):
            drifts.append(CellDrift(exp_id, label, "<row>", 0.0, 0.0))
            continue
        for column, old_value, new_value in zip(headers, old_row, new_row):
            if not _numeric(old_value) or not _numeric(new_value):
                continue
            if not _within(float(old_value), float(new_value), tolerance):
                drifts.append(CellDrift(exp_id, label, column,
                                        float(old_value), float(new_value)))
    return drifts


def _diff_checks(exp_id: str, old_exp: dict, new_exp: dict) -> list[str]:
    old_checks = {c["claim"]: c["passed"] for c in old_exp["checks"]}
    flips = []
    for check in new_exp["checks"]:
        was = old_checks.get(check["claim"])
        if was is not None and was != check["passed"]:
            direction = "PASS->MISS" if was else "MISS->PASS"
            flips.append(f"{exp_id}: [{direction}] {check['claim']}")
    return flips


def _numeric(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _within(old: float, new: float, tolerance: float) -> bool:
    if old == new:
        return True
    scale = max(abs(old), abs(new))
    return abs(new - old) <= tolerance * scale


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    if len(args) < 2:
        print("usage: regression.py OLD.json NEW.json [tolerance]")
        return 2
    tolerance = float(args[2]) if len(args) > 2 else DEFAULT_TOLERANCE
    old = json.loads(Path(args[0]).read_text())
    new = json.loads(Path(args[1]).read_text())
    report = compare_runs(old, new, tolerance)
    print(report.to_text())
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
