"""Ablation studies beyond the paper's figures (DESIGN.md Section 6).

Three studies probe the design choices the paper argues for:

* **Spatial locality** — the baselines' drain cost collapses when the
  hierarchy's content is contiguous, while Horus is oblivious to layout;
  this quantifies Section V-A's argument that the hold-up budget must be
  sized for the sparse worst case.
* **Metadata-cache size** — how much bigger the on-chip metadata caches
  would have to be before a baseline drain stops thrashing (the alternative
  Horus renders unnecessary).
* **MAC coalescing degree** — the write/compute trade-off behind
  Horus-SLM/DLM, evaluated analytically over the coalescing factor (the
  simulator pins the g=8 points).
"""

from dataclasses import replace

from repro.experiments.result import ExperimentResult, ShapeCheck
from repro.experiments.suite import DrainSuite


def run_locality(suite: DrainSuite) -> ExperimentResult:
    """Drain cost under worst-case-sparse vs contiguous cache contents."""
    rows = []
    values: dict[tuple[str, str], int] = {}
    for scheme in ("base-lu", "horus-slm"):
        for fill in ("sparse", "sequential"):
            report = suite.episode(suite.config(), scheme, fill=fill)
            per_block = report.total_memory_requests / report.flushed_blocks
            values[(scheme, fill)] = report.total_memory_requests
            rows.append([scheme, fill, report.flushed_blocks,
                         report.total_memory_requests, per_block])

    baseline_swing = (values[("base-lu", "sparse")]
                      / values[("base-lu", "sequential")])
    horus_swing = (values[("horus-slm", "sparse")]
                   / values[("horus-slm", "sequential")])
    checks = [
        ShapeCheck(
            "baseline drain cost is several times higher for sparse than "
            "contiguous contents",
            baseline_swing > 2.0, f"{baseline_swing:.1f}x swing"),
        ShapeCheck(
            "Horus drain cost is oblivious to content layout",
            0.95 <= horus_swing <= 1.05, f"{horus_swing:.2f}x swing"),
    ]
    return ExperimentResult(
        experiment_id="ablation-locality",
        title="Drain cost vs cache-content spatial locality",
        headers=["scheme", "fill", "blocks", "memory requests", "per block"],
        rows=rows,
        paper_expectation="Section V-A: baselines depend heavily on spatial "
                          "adjacency; Horus is oblivious to it",
        checks=checks,
    )


def run_metadata_cache(suite: DrainSuite) -> ExperimentResult:
    """Base-LU drain cost as the metadata caches grow."""
    rows = []
    requests = []
    for factor in (1, 2, 4, 8):
        config = suite.config()
        sec = config.security
        config = replace(config, security=replace(
            sec,
            counter_cache_size=sec.counter_cache_size * factor,
            mac_cache_size=sec.mac_cache_size * factor,
            tree_cache_size=sec.tree_cache_size * factor,
        ))
        report = suite.episode(config, "base-lu")
        requests.append(report.total_memory_requests)
        rows.append([f"{factor}x", report.total_memory_requests,
                     report.total_memory_requests / report.flushed_blocks])

    horus = suite.drain("horus-slm").total_memory_requests
    checks = [
        ShapeCheck(
            "larger metadata caches monotonically reduce baseline drain cost",
            all(a >= b for a, b in zip(requests, requests[1:])),
            f"{[f'{r:,}' for r in requests]}"),
        ShapeCheck(
            "even 8x metadata caches leave the baseline well above Horus",
            requests[-1] > 2 * horus,
            f"8x baseline {requests[-1]:,} vs Horus {horus:,}"),
    ]
    return ExperimentResult(
        experiment_id="ablation-metadata-cache",
        title="Base-LU drain cost vs metadata-cache size",
        headers=["metadata cache scale", "memory requests", "per block"],
        rows=rows,
        paper_expectation="(beyond paper) growing the on-chip caches cannot "
                          "close the gap Horus closes structurally",
        checks=checks,
    )


def run_coalescing(suite: DrainSuite) -> ExperimentResult:
    """CHV MAC write/compute trade-off vs coalescing degree (analytic).

    One level of coalescing with degree ``g`` writes ``N/g`` MAC blocks and
    computes ``N`` MACs; two levels (the DLM register scheme generalized)
    write ``N/g^2`` blocks and compute ``N (1 + 1/g)`` MACs.  The simulator
    pins the g=8 points (SLM and DLM) elsewhere; this table maps the space.
    """
    blocks = suite.config().total_cache_lines
    rows = []
    for degree in (2, 4, 8, 16):
        one_level_writes = -(-blocks // degree)
        two_level_writes = -(-blocks // (degree * degree))
        two_level_macs = blocks + -(-blocks // degree)
        rows.append([degree, one_level_writes, blocks,
                     two_level_writes, two_level_macs])

    checks = [
        ShapeCheck(
            "two-level coalescing at g=8 writes 8x fewer MAC blocks for "
            "12.5% more MACs (the paper's SLM->DLM trade)",
            True,
            f"g=8: {-(-blocks // 8):,} -> {-(-blocks // 64):,} writes, "
            f"{blocks:,} -> {blocks + -(-blocks // 8):,} MACs"),
    ]
    return ExperimentResult(
        experiment_id="ablation-coalescing",
        title="CHV MAC coalescing degree trade-off (analytic)",
        headers=["degree g", "1-level MAC writes", "1-level MACs",
                 "2-level MAC writes", "2-level MACs"],
        rows=rows,
        paper_expectation="(beyond paper) Fig. 10 generalized over the "
                          "coalescing factor",
        checks=checks,
    )
