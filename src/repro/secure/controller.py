"""The run-time secure memory controller.

Implements counter-mode encryption with split counters, per-block data MACs,
and a sparse 8-ary Bonsai Merkle Tree over the counter blocks — the secure
NVM stack of Section II — together with the three security-metadata caches of
Table I and a pluggable integrity-tree update scheme (eager / lazy).

Baseline secure EPD systems drain the cache hierarchy straight through this
controller's :meth:`write` path (Section IV-B), which is where the paper's
10.3x memory-access explosion comes from: each flushed line drags its
address-specific metadata through the caches, and sparse contents turn nearly
every access into a miss plus a dirty eviction.
"""

from collections import OrderedDict

from repro.common.config import SystemConfig
from repro.common.constants import (
    CACHE_LINE_SIZE,
    COUNTER_BLOCK_COVERAGE,
    MAC_SIZE,
    MACS_PER_BLOCK,
    MINOR_COUNTER_BITS,
)
from repro.common.config import CacheConfig
from repro.common.errors import ConfigError, IntegrityError
from repro.crypto.arena import frame_buffer
from repro.crypto.batch import batching_enabled
from repro.crypto.counters import SplitCounterBlock
from repro.crypto.engine import AesEngine, KeySchedule, MacEngine
from repro.crypto.primitives import MacDomain
from repro.mem.nvm import NvmDevice
from repro.mem.regions import MemoryLayout
from repro.metadata.cache import MetadataCache, MetaLine
from repro.metadata.nodes import DefaultNodes, TreeNode
from repro.secure.schemes import UpdateScheme, make_scheme
from repro.stats.counters import SimStats
from repro.stats.events import MacKind, ReadKind, WriteKind

_ZERO_BLOCK = bytes(CACHE_LINE_SIZE)
_MINOR_LIMIT = 1 << MINOR_COUNTER_BITS
_READ_MAC = ReadKind.MAC


class SecureMemoryController:
    """Counter-mode encryption + BMT integrity over a timed NVM device."""

    def __init__(self, config: SystemConfig, nvm: NvmDevice,
                 layout: MemoryLayout, stats: SimStats,
                 scheme: str | UpdateScheme = "lazy",
                 batched: bool | None = None,
                 key_schedule: KeySchedule | None = None):
        self._config = config
        self.nvm = nvm
        self.layout = layout
        self.stats = stats
        self.functional = config.security.functional
        self.batched = batching_enabled(batched)
        self.scheme = (scheme if isinstance(scheme, UpdateScheme)
                       else make_scheme(scheme))

        # Engines must be final before any downstream component (the Horus
        # drain engine captures them at construction), so alternate keying
        # is injected here rather than swapped in afterwards.
        if key_schedule is None:
            self.aes = AesEngine(stats, functional=self.functional)
            self.mac = MacEngine(stats, functional=self.functional)
        else:
            self.aes, self.mac = key_schedule.build(stats, self.functional)
        self._defaults = DefaultNodes(self.mac._key, layout.num_tree_levels)

        sec = config.security
        self.counter_cache = MetadataCache(
            _meta_cache_config("counter-cache", sec.counter_cache_size,
                               sec.counter_cache_ways))
        self.mac_cache = MetadataCache(
            _meta_cache_config("mac-cache", sec.mac_cache_size,
                               sec.mac_cache_ways))
        self.tree_cache = MetadataCache(
            _meta_cache_config("tree-cache", sec.tree_cache_size,
                               sec.tree_cache_ways))

        # On-chip persistent registers of the TCB.
        self.root_mac = self._defaults.mac(layout.num_tree_levels)
        self.cache_tree_root: bytes | None = None
        self.shadow_count = 0

        # Victim buffer for dirty metadata evictions.  A lazy writeback must
        # atomically pair "write child to NVM" with "refresh parent slot";
        # doing it inline from deep inside a fetch can evict lines that are
        # still being verified or re-fetch a stale copy of the victim itself.
        # Parking victims here and draining at the end of each top-level
        # operation (with lookups absorbing buffered victims) closes both
        # hazards — it is the writeback/victim buffer a real controller has.
        self._victims: "OrderedDict[int, tuple[MetaLine, str]]" = OrderedDict()
        self._draining_victims = False

        self.op_hook = None
        """Optional observer called as ``op_hook(kind, address)`` (kind
        ``"w"``/``"r"``) at the top of every public data-path operation,
        *before* any metadata or NVM access.  The campaign engine uses it to
        inject adversary actions at a precise memory-side op boundary
        without bypassing any accounting — the hook only observes; the op
        then runs normally.  While set, :meth:`run_ops_batch` falls back to
        the scalar path so the hook sees every op at its true position."""

    # ------------------------------------------------------------------
    # Public data path
    # ------------------------------------------------------------------

    def write(self, address: int, plaintext: bytes | None) -> None:
        """Encrypt and persist one 64 B data block with full protection.

        This is both the run-time LLC-writeback path and the per-line step of
        a baseline secure drain.
        """
        self.layout.require_data_address(address)
        if self.op_hook is not None:
            self.op_hook("w", address)
        counter_line = self.get_counter_line(address)
        block: SplitCounterBlock = counter_line.value
        slot = self.layout.counter_slot(address)

        old_block = block.copy() if block.will_overflow(slot) else None
        overflowed = block.increment(slot)
        if overflowed:
            self._reencrypt_page(address, old_block, block, skip_slot=slot)

        counter = block.counter_for(slot)
        ciphertext = self.aes.encrypt(address, counter, plaintext)
        mac_value = self.mac.block_mac(
            MacKind.DATA_PROTECT, ciphertext, address, counter,
            domain=MacDomain.DATA)
        self._store_data_mac(address, mac_value)
        self.nvm.write(address, ciphertext if ciphertext is not None
                       else _ZERO_BLOCK, WriteKind.DATA)
        self.scheme.on_data_write(self, counter_line)
        self.drain_victims()

    def read(self, address: int) -> bytes:
        """Fetch, verify, and decrypt one 64 B data block."""
        self.layout.require_data_address(address)
        if self.op_hook is not None:
            self.op_hook("r", address)
        ciphertext = self.nvm.read(address, ReadKind.DATA)
        if not self.nvm.backend.is_written(address):
            # Never-written memory decrypts to zeros by convention (boot-time
            # initialized); there is nothing to verify yet.
            return _ZERO_BLOCK
        counter_line = self.get_counter_line(address)
        slot = self.layout.counter_slot(address)
        counter = counter_line.value.counter_for(slot)

        stored_mac = self._load_data_mac(address)
        actual_mac = self.mac.block_mac(
            MacKind.VERIFY, ciphertext, address, counter,
            domain=MacDomain.DATA)
        if self.functional and stored_mac != actual_mac:
            raise IntegrityError(
                f"data MAC mismatch at {address:#x}", address)
        plaintext = self.aes.decrypt(address, counter, ciphertext)
        self.drain_victims()
        return plaintext if plaintext is not None else _ZERO_BLOCK

    # ------------------------------------------------------------------
    # Batched run-time execution (epoch replay)
    # ------------------------------------------------------------------

    def run_ops(self, ops: "list[tuple[str, int, bytes | None]]") \
            -> list[bytes | None]:
        """Execute an in-order stream of run-time ops, one at a time.

        ``ops`` holds ``("w", address, data)`` / ``("r", address, None)``
        tuples — the memory-side stream a cache hierarchy emits while
        replaying a trace epoch (fetches and dirty evictions, in issue
        order).  Returns one entry per op: the fetched plaintext for reads,
        ``None`` for writes.  This scalar form is the specification
        :meth:`run_ops_batch` is held to.
        """
        results: list[bytes | None] = []
        append = results.append
        write = self.write
        read = self.read
        for kind, address, data in ops:
            if kind == "w":
                write(address, data)
                append(None)
            else:
                append(read(address))
        return results

    def run_ops_batch(self, ops: "list[tuple[str, int, bytes | None]]",
                      *, fetches: bool = False) -> list[bytes | None]:
        """Batched :meth:`run_ops`: phase-confined epoch execution.

        With ``fetches=True`` the return value holds only the read
        results, in op order — exactly the stream
        :meth:`~repro.cache.hierarchy.CacheHierarchy.resolve_pending`
        consumes (fills are emitted once per read, in issue order), so the
        caller needs no per-epoch re-filter of the full op stream.

        Observably identical to the scalar form — same NVM image, same
        stats, same metadata-cache hits/misses/LRU states, same values —
        because the three metadata regions are disjoint and each region's
        access stream is issued in op order:

        1. *counter phase* (op order): counter fetch/verify, increment,
           scheme hook, counter/tree victim drains;
        2. *crypto batch*: pads, ciphertexts, and data MACs for every write
           through the :mod:`repro.crypto.batch` kernels (one shared frame
           pass);
        3. *data phase* (op order): grouped NVM issue of data reads/writes;
        4. *MAC phase* (op order): MAC-cache stores/loads + MAC victim
           drains;
        5. *verify/decrypt batch*: batched VERIFY MACs and decryption for
           the reads.

        A write whose minor counter would overflow breaks the batch: the
        prefix completes through the five stages, the overflowing op runs
        its page re-encryption on the scalar path, and a fresh segment
        resumes after it.  Accounting side channels the grouped NVM issue
        cannot reproduce exactly (request traces, fault plans, wear) force
        the scalar path, as does non-functional mode.  On a MAC mismatch
        the same :class:`IntegrityError` is raised, though counters
        recorded after the failing op may differ from scalar — the oracle
        compares successful replays.
        """
        nvm = self.nvm
        if (not self.batched or not self.functional
                or nvm.trace is not None or nvm.fault_plan is not None
                or nvm.wear is not None or self.op_hook is not None
                or any(data is None
                       for kind, _, data in ops if kind == "w")):
            results = self.run_ops(ops)
            if fetches:
                # Cold path only (hooked / traced / non-functional runs):
                # the scalar results carry one entry per op.
                return [result for op, result in zip(ops, results)
                        if op[0] == "r"]
            return results
        results = [None] * len(ops)
        fetched: list[bytes | None] | None = [] if fetches else None
        start = 0
        while start < len(ops):
            start = self._run_segment(ops, start, results, fetched)
        return fetched if fetched is not None else results

    def _run_segment(self, ops: "list[tuple[str, int, bytes | None]]",
                     start: int, results: list[bytes | None],
                     fetched: "list[bytes | None] | None" = None) -> int:
        """Execute one overflow-free segment of ``ops`` starting at
        ``start``; returns the index of the first unprocessed op."""
        layout = self.layout
        counter_block_address = layout.counter_block_address
        counter_cache = self.counter_cache
        # The counter/MAC phases below transcribe MetadataCache.lookup /
        # insert, _absorb_victim, and NvmDevice.read inline against the
        # cache's set dicts: same probes, same LRU movement, same victim
        # parking, same stats events — minus the per-access call chain,
        # which dominates the memory-side profile of epoch replay.
        ctr_sets = counter_cache._sets
        ctr_ns = counter_cache._num_sets
        ctr_base = layout._counters_base
        ctr_end = layout._counters_end
        data_size = layout._data_size
        ctr_hits = ctr_misses = 0
        fill_counter = self._fill_counter_line
        require_data_address = layout.require_data_address
        on_data_write = self.scheme.on_data_write
        nvm = self.nvm
        is_written = nvm.backend.is_written
        drain = self.drain_victims
        victims = self._victims
        meta_kinds = ("counter", "tree")

        pending_written: set[int] = set()
        write_ops: list[int] = []
        write_addrs: list[int] = []
        write_ctrs: list[int] = []
        write_data: list[bytes] = []
        read_ops: list[int] = []
        read_addrs: list[int] = []
        read_ctrs: list[int] = []
        zero_reads: list[int] = []
        # Data-phase stream, op-ordered: a write is its op index, a read is
        # the index's bitwise complement (both streams stay in op order, so
        # later stages use positional cursors instead of index maps).
        data_phase: list[int] = []
        pending_add = pending_written.add
        w_ops = write_ops.append
        w_addrs = write_addrs.append
        w_ctrs = write_ctrs.append
        w_data = write_data.append
        r_ops = read_ops.append
        r_addrs = read_addrs.append
        r_ctrs = read_ctrs.append
        z_reads = zero_reads.append
        dp = data_phase.append

        # Stage 1 — counter phase, in op order.  Increments, the scheme
        # hook (dirty marking / eager propagation), and counter/tree victim
        # drains all happen here so an intra-segment eviction sees the same
        # metadata-cache state as under scalar issue.
        overflow = -1
        n = len(ops)
        index = start
        try:
            while index < n:
                kind, address, data = ops[index]
                if kind == "w":
                    cb_address = (ctr_base
                                  + address // COUNTER_BLOCK_COVERAGE
                                  * CACHE_LINE_SIZE)
                    if (address % CACHE_LINE_SIZE or address < 0
                            or address >= data_size
                            or cb_address >= ctr_end):
                        # Cold path: exact errors and region-tail handling.
                        cb_address = counter_block_address(address)
                    ctr_set = ctr_sets[cb_address // CACHE_LINE_SIZE % ctr_ns]
                    counter_line = ctr_set.get(cb_address)
                    if counter_line is None:
                        ctr_misses += 1
                        counter_line = fill_counter(cb_address)
                    else:
                        ctr_hits += 1
                        ctr_set[cb_address] = ctr_set.pop(cb_address)
                    block: SplitCounterBlock = counter_line.value
                    slot = (address % COUNTER_BLOCK_COVERAGE) \
                        // CACHE_LINE_SIZE
                    # Inline of will_overflow/increment/counter_for for the
                    # non-overflow case — the only one that stays in the
                    # batch (the break leaves the block untouched for the
                    # scalar overflow tail below, exactly like
                    # will_overflow would).
                    minors = block.minors
                    minor = minors[slot] + 1
                    if minor >= _MINOR_LIMIT:
                        overflow = index
                        break
                    minors[slot] = minor
                    w_ops(index)
                    w_addrs(address)
                    w_ctrs((block.major << MINOR_COUNTER_BITS) | minor)
                    w_data(data)  # type: ignore[arg-type]
                    pending_add(address)
                    dp(index)
                    on_data_write(self, counter_line)
                    if victims:
                        drain(meta_kinds)
                else:
                    dp(~index)
                    if is_written(address) or address in pending_written:
                        cb_address = (ctr_base
                                      + address // COUNTER_BLOCK_COVERAGE
                                      * CACHE_LINE_SIZE)
                        if (address % CACHE_LINE_SIZE or address < 0
                                or address >= data_size
                                or cb_address >= ctr_end):
                            cb_address = counter_block_address(address)
                        ctr_set = ctr_sets[cb_address // CACHE_LINE_SIZE
                                           % ctr_ns]
                        counter_line = ctr_set.get(cb_address)
                        if counter_line is None:
                            ctr_misses += 1
                            counter_line = fill_counter(cb_address)
                        else:
                            ctr_hits += 1
                            ctr_set[cb_address] = ctr_set.pop(cb_address)
                        rblock = counter_line.value
                        r_ops(index)
                        r_addrs(address)
                        r_ctrs((rblock.major << MINOR_COUNTER_BITS)
                               | rblock.minors[(address
                                                % COUNTER_BLOCK_COVERAGE)
                                               // CACHE_LINE_SIZE])
                        if victims:
                            drain(meta_kinds)
                    else:
                        # Never-written memory reads as zeros with nothing
                        # to verify — the scalar path touches no metadata
                        # either, but it does validate the address first.
                        require_data_address(address)
                        z_reads(index)
                index += 1
        finally:
            counter_cache.hits += ctr_hits
            counter_cache.misses += ctr_misses

        # Stage 2 — one crypto batch for every write in the segment.
        write_macs: list[bytes]
        if write_addrs:
            frames = frame_buffer(write_addrs, write_ctrs)
            ciphertext = self.aes.encrypt_batch(
                write_addrs, write_ctrs, b"".join(write_data), frames)
            assert ciphertext is not None  # functional mode, data present
            write_macs = self.mac.block_mac_batch(
                MacKind.DATA_PROTECT, ciphertext, write_addrs, write_ctrs,
                domain=MacDomain.DATA, frames=frames)
        else:
            ciphertext = b""
            write_macs = []

        # Stage 3 — data-region NVM traffic.  The segment is fault-,
        # wear-, and trace-free by construction (run_ops_batch
        # eligibility), so the op-ordered run grouping collapses further:
        # reads that precede any same-address write see the pre-segment
        # backend and are issued as one arena read *before* the writes
        # land as one arena write; a read of data written earlier in the
        # segment is satisfied from the segment's own ciphertext — the
        # backend holds identical bytes by the time the write phase has
        # run, and the device still accounts one DATA read per request.
        read_blocks: dict[int, bytes | memoryview] = {}
        ct_view = memoryview(ciphertext)
        pending: dict[int, memoryview] = {}
        backend_reads: list[int] = []
        served = 0
        wpos = 0
        for entry in data_phase:
            if entry >= 0:
                offset = wpos * CACHE_LINE_SIZE
                wpos += 1
                pending[ops[entry][1]] = \
                    ct_view[offset:offset + CACHE_LINE_SIZE]
            else:
                op_index = ~entry
                block = pending.get(ops[op_index][1])
                if block is None:
                    backend_reads.append(op_index)
                else:
                    read_blocks[op_index] = block
                    served += 1
        if backend_reads:
            arena = memoryview(nvm.read_arena(
                [ops[op_index][1] for op_index in backend_reads],
                ReadKind.DATA))
            for pos, op_index in enumerate(backend_reads):
                offset = pos * CACHE_LINE_SIZE
                read_blocks[op_index] = \
                    arena[offset:offset + CACHE_LINE_SIZE]
        if served:
            nvm.account_reads(ReadKind.DATA, served)
        if write_addrs:
            nvm.write_arena(write_addrs, ciphertext, WriteKind.DATA)

        # Stage 4 — MAC-region phase, in op order, with per-op MAC victim
        # drains (the scalar end-of-op drain's position in this region's
        # stream).
        stored_macs: list[bytes] = []
        mac_kind = ("mac",)
        mac_block_address = layout.mac_block_address
        mac_cache = self.mac_cache
        mac_sets = mac_cache._sets
        mac_ns = mac_cache._num_sets
        mac_ways = mac_cache._ways
        macs_base = layout._macs_base
        macs_end = layout._macs_end
        mac_span = CACHE_LINE_SIZE * MACS_PER_BLOCK
        mac_hits = mac_misses = mac_reads = 0
        backend_read = nvm.backend.read_block
        new_meta = MetaLine.__new__
        stored_append = stored_macs.append
        wpos = 0
        zpos = 0
        num_zero = len(zero_reads)
        try:
            for entry in data_phase:
                if entry >= 0:
                    address = ops[entry][1]
                    mac_value = write_macs[wpos]
                    wpos += 1
                else:
                    op_index = ~entry
                    # Zero reads touch no MAC state (scalar returns before
                    # the MAC load); both streams are op-ordered, so one
                    # cursor suffices to skip them.
                    if zpos < num_zero and zero_reads[zpos] == op_index:
                        zpos += 1
                        continue
                    address = ops[op_index][1]
                    mac_value = None
                mb_address = macs_base + address // mac_span \
                    * CACHE_LINE_SIZE
                if mb_address >= macs_end:
                    # Cold path: region-tail handling (addresses were
                    # validated in the counter phase).
                    mb_address = mac_block_address(address)
                mac_set = mac_sets[mb_address // CACHE_LINE_SIZE % mac_ns]
                mac_line = mac_set.get(mb_address)
                if mac_line is None:
                    mac_misses += 1
                    buffered = victims.pop(mb_address, None)
                    if buffered is not None:
                        mac_line = buffered[0]
                    else:
                        mac_reads += 1
                        mac_line = new_meta(MetaLine)
                        mac_line.address = mb_address
                        mac_line.value = bytearray(backend_read(mb_address))
                        mac_line.dirty = False
                    if len(mac_set) >= mac_ways:
                        victim = mac_set.pop(next(iter(mac_set)))
                        if victim.dirty:
                            victims[victim.address] = (victim, "mac")
                    mac_set[mb_address] = mac_line
                else:
                    mac_hits += 1
                    mac_set[mb_address] = mac_set.pop(mb_address)
                offset = (address // CACHE_LINE_SIZE) % MACS_PER_BLOCK \
                    * MAC_SIZE
                if mac_value is not None:
                    mac_line.value[offset:offset + MAC_SIZE] = mac_value
                    mac_line.dirty = True
                else:
                    stored_append(
                        bytes(mac_line.value[offset:offset + MAC_SIZE]))
                if victims:
                    drain(mac_kind)
        finally:
            mac_cache.hits += mac_hits
            mac_cache.misses += mac_misses
            # Fold the per-fill MAC-region reads into one stats bump —
            # SimStats is pure counting, so the fold is unobservable.
            nvm.stats.record_read(_READ_MAC, mac_reads)

        # Stage 5 — batched verify + decrypt for the segment's reads.
        if read_ops:
            read_ct = b"".join(read_blocks[op_index] for op_index in read_ops)
            actual_macs = self.mac.block_mac_batch(
                MacKind.VERIFY, read_ct, read_addrs, read_ctrs,
                domain=MacDomain.DATA)
            for stored, address, actual in zip(stored_macs, read_addrs,
                                               actual_macs):
                if stored != actual:
                    raise IntegrityError(
                        f"data MAC mismatch at {address:#x}", address)
            plaintext = self.aes.decrypt_batch(read_addrs, read_ctrs, read_ct)
            assert plaintext is not None
            for pos, op_index in enumerate(read_ops):
                results[op_index] = plaintext[pos * CACHE_LINE_SIZE:
                                              (pos + 1) * CACHE_LINE_SIZE]
        for op_index in zero_reads:
            results[op_index] = _ZERO_BLOCK
        if fetched is not None:
            # The segment's reads, in op order (negative data_phase
            # entries), appended to the caller's fill-aligned stream.
            fetched.extend(results[~entry] for entry in data_phase
                           if entry < 0)

        if overflow < 0:
            return n

        # Finish the overflowing write on the scalar path, reusing the
        # counter access stage 1 already performed for it (a scalar run
        # fetches exactly once too); its parked victims drain at the end,
        # as the scalar end-of-op drain would.
        _, address, data = ops[overflow]
        old_block = block.copy()
        block.increment(slot)
        self._reencrypt_page(address, old_block, block, skip_slot=slot)
        counter = block.counter_for(slot)
        overflow_ct = self.aes.encrypt(address, counter, data)
        mac_value = self.mac.block_mac(
            MacKind.DATA_PROTECT, overflow_ct, address, counter,
            domain=MacDomain.DATA)
        self._store_data_mac(address, mac_value)
        self.nvm.write(address,
                       overflow_ct if overflow_ct is not None
                       else _ZERO_BLOCK, WriteKind.DATA)
        self.scheme.on_data_write(self, counter_line)
        self.drain_victims()
        return overflow + 1

    # ------------------------------------------------------------------
    # Counter blocks
    # ------------------------------------------------------------------

    def get_counter_line(self, data_address: int) -> MetaLine:
        """Counter block for ``data_address``, verified and cached."""
        cb_address = self.layout.counter_block_address(data_address)
        line = self.counter_cache.lookup(cb_address)
        if line is not None:
            return line
        return self._fill_counter_line(cb_address)

    def _fill_counter_line(self, cb_address: int) -> MetaLine:
        """Miss path of :meth:`get_counter_line`: the cache lookup (and its
        hit/miss accounting) has already happened."""
        buffered = self._absorb_victim(cb_address)
        if buffered is not None:
            self._cache_insert(self.counter_cache, buffered, "counter")
            return buffered

        raw = self.nvm.read(cb_address, ReadKind.COUNTER)
        actual = self.mac.digest_mac(MacKind.VERIFY, raw,
                                     domain=MacDomain.NODE)
        expected = self._counter_slot_mac(cb_address)
        if self.functional and actual != expected:
            raise IntegrityError(
                f"counter block MAC mismatch at {cb_address:#x}", cb_address)

        line = MetaLine(cb_address, SplitCounterBlock.from_bytes(raw))
        self._cache_insert(self.counter_cache, line, "counter")
        return line

    def _counter_slot_mac(self, cb_address: int) -> bytes:
        level, index, slot = self.layout.parent_of_counter_block(cb_address)
        parent = self.get_tree_node(level, index)
        return parent.value.get_slot(slot)

    def _writeback_counter(self, line: MetaLine) -> None:
        if self.scheme.needs_parent_update_on_writeback():
            content = line.value.to_bytes()
            new_mac = self.mac.digest_mac(MacKind.TREE_UPDATE, content,
                                          domain=MacDomain.NODE)
            level, index, slot = self.layout.parent_of_counter_block(
                line.address)
            parent = self.get_tree_node(level, index)
            parent.value.set_slot(slot, new_mac)
            parent.dirty = True
            self.nvm.write(line.address, content, WriteKind.COUNTER)
        else:
            self.nvm.write(line.address, line.value.to_bytes(),
                           WriteKind.COUNTER)

    # ------------------------------------------------------------------
    # Tree nodes
    # ------------------------------------------------------------------

    def get_tree_node(self, level: int, index: int) -> MetaLine:
        """Tree node (level, index), verified against its ancestors."""
        address = self.layout.tree_node_address(level, index)
        line = self.tree_cache.lookup(address)
        if line is not None:
            return line

        buffered = self._absorb_victim(address)
        if buffered is not None:
            self._cache_insert(self.tree_cache, buffered, "tree")
            return buffered

        raw = self.nvm.read(address, ReadKind.TREE_NODE)
        if not self.nvm.backend.is_written(address):
            raw = self._defaults.content(level)
        actual = self.mac.digest_mac(MacKind.VERIFY, raw,
                                     domain=MacDomain.NODE)
        expected = self._node_parent_mac(level, index)
        if self.functional and actual != expected:
            raise IntegrityError(
                f"tree node ({level},{index}) MAC mismatch", address)

        line = MetaLine(address, TreeNode(raw))
        self._cache_insert(self.tree_cache, line, "tree")
        return line

    def _node_parent_mac(self, level: int, index: int) -> bytes:
        if level == self.layout.num_tree_levels:
            return self.root_mac
        plevel, pindex, slot = self.layout.parent_of_tree_node(level, index)
        parent = self.get_tree_node(plevel, pindex)
        return parent.value.get_slot(slot)

    def _writeback_tree_node(self, line: MetaLine) -> None:
        level, index = self.layout.tree_node_coords(line.address)
        content = line.value.to_bytes()
        if self.scheme.needs_parent_update_on_writeback():
            new_mac = self.mac.digest_mac(MacKind.TREE_UPDATE, content,
                                          domain=MacDomain.NODE)
            if level == self.layout.num_tree_levels:
                self.root_mac = new_mac
            else:
                plevel, pindex, slot = self.layout.parent_of_tree_node(
                    level, index)
                parent = self.get_tree_node(plevel, pindex)
                parent.value.set_slot(slot, new_mac)
                parent.dirty = True
        self.nvm.write(line.address, content, WriteKind.TREE_NODE)

    def propagate_to_root(self, counter_line: MetaLine) -> None:
        """Eager-scheme path refresh: counter block up to the root register."""
        content_mac = self.mac.digest_mac(
            MacKind.TREE_UPDATE, counter_line.value.to_bytes(),
            domain=MacDomain.NODE)
        level, index, slot = self.layout.parent_of_counter_block(
            counter_line.address)
        while True:
            node = self.get_tree_node(level, index)
            node.value.set_slot(slot, content_mac)
            node.dirty = True
            content_mac = self.mac.digest_mac(
                MacKind.TREE_UPDATE, node.value.to_bytes(),
                domain=MacDomain.NODE)
            if level == self.layout.num_tree_levels:
                self.root_mac = content_mac
                return
            level, index, slot = self.layout.parent_of_tree_node(level, index)

    # ------------------------------------------------------------------
    # Data MAC blocks
    # ------------------------------------------------------------------

    def _get_mac_line(self, data_address: int) -> MetaLine:
        mb_address = self.layout.mac_block_address(data_address)
        line = self.mac_cache.lookup(mb_address)
        if line is not None:
            return line
        return self._fill_mac_line(mb_address)

    def _fill_mac_line(self, mb_address: int) -> MetaLine:
        """Miss path of :meth:`_get_mac_line` (lookup already accounted)."""
        buffered = self._absorb_victim(mb_address)
        if buffered is not None:
            self._cache_insert(self.mac_cache, buffered, "mac")
            return buffered

        raw = self.nvm.read(mb_address, ReadKind.MAC)
        line = MetaLine(mb_address, bytearray(raw))
        self._cache_insert(self.mac_cache, line, "mac")
        return line

    def _store_data_mac(self, data_address: int, mac_value: bytes) -> None:
        line = self._get_mac_line(data_address)
        slot = self.layout.mac_slot(data_address)
        line.value[slot * MAC_SIZE:(slot + 1) * MAC_SIZE] = mac_value
        line.dirty = True

    def _load_data_mac(self, data_address: int) -> bytes:
        line = self._get_mac_line(data_address)
        slot = self.layout.mac_slot(data_address)
        return bytes(line.value[slot * MAC_SIZE:(slot + 1) * MAC_SIZE])

    # ------------------------------------------------------------------
    # Victim buffer
    # ------------------------------------------------------------------

    def _cache_insert(self, cache: MetadataCache, line: MetaLine,
                      kind: str) -> None:
        """Insert into a metadata cache; dirty victims park in the buffer."""
        victim = cache.insert(line)
        if victim is not None and victim.dirty:
            self._victims[victim.address] = (victim, kind)

    def _absorb_victim(self, address: int) -> MetaLine | None:
        """A lookup hit in the victim buffer: reclaim the line unwritten.

        The buffered copy is the newest version of the block; pulling it back
        avoids both the NVM round-trip and the stale-fetch hazard.  No
        verification is needed — it never left the TCB.
        """
        entry = self._victims.pop(address, None)
        return entry[0] if entry is not None else None

    def drain_victims(self, kinds: tuple[str, ...] | None = None) -> None:
        """Write out parked victims (may cascade; runs to a fixed point).

        ``kinds`` restricts the drain to victims of the named kinds
        (``"counter"`` / ``"tree"`` / ``"mac"``), preserving FIFO order
        among the matching entries.  The batched run-time path uses this to
        drain counter/tree victims during its counter phase and MAC victims
        during its MAC phase — each at the same point of its region's
        access stream as the scalar path's end-of-op drain, which is what
        keeps metadata-cache accounting identical.  Draining one kind can
        park victims of another (a counter writeback touches the tree
        cache); the loop re-scans until no matching victim remains.
        """
        if not self._victims or self._draining_victims:
            return
        self._draining_victims = True
        try:
            while self._victims:
                if kinds is None:
                    _, (line, kind) = self._victims.popitem(last=False)
                else:
                    # The phase-confined drains only ever park victims of
                    # the kinds they drain, so the FIFO head almost always
                    # matches; scan only when it does not.
                    address, (line, kind) = next(iter(self._victims.items()))
                    if kind in kinds:
                        del self._victims[address]
                    else:
                        found = next(
                            (addr for addr, (_, k) in self._victims.items()
                             if k in kinds), None)
                        if found is None:
                            return
                        line, kind = self._victims.pop(found)
                if kind == "counter":
                    self._writeback_counter(line)
                elif kind == "tree":
                    self._writeback_tree_node(line)
                else:
                    self.nvm.write(line.address, bytes(line.value),
                                   WriteKind.DATA_MAC)
        finally:
            self._draining_victims = False

    # ------------------------------------------------------------------
    # Page re-encryption on minor-counter overflow
    # ------------------------------------------------------------------

    def _reencrypt_page(self, address: int, old: SplitCounterBlock | None,
                        new: SplitCounterBlock, skip_slot: int) -> None:
        """Minor overflow bumped the major: re-encrypt the whole 4 KiB page."""
        if old is None:
            raise ConfigError("overflow without captured old counters")
        if self.batched and self.functional and self.nvm.trace is None:
            self._reencrypt_page_batched(address, old, new, skip_slot)
            return
        page_base = address - (address % COUNTER_BLOCK_COVERAGE)
        for slot in range(64):
            line_address = page_base + slot * CACHE_LINE_SIZE
            if slot == skip_slot or not self.nvm.backend.is_written(line_address):
                continue
            ciphertext = self.nvm.read(line_address, ReadKind.DATA)
            plaintext = self.aes.decrypt(
                line_address, old.counter_for(slot), ciphertext)
            new_ct = self.aes.encrypt(
                line_address, new.counter_for(slot), plaintext)
            mac_value = self.mac.block_mac(
                MacKind.DATA_PROTECT, new_ct, line_address,
                new.counter_for(slot), domain=MacDomain.DATA)
            self._store_data_mac(line_address, mac_value)
            self.nvm.write(line_address,
                           new_ct if new_ct is not None else _ZERO_BLOCK,
                           WriteKind.DATA)

    def _reencrypt_page_batched(self, address: int, old: SplitCounterBlock,
                                new: SplitCounterBlock,
                                skip_slot: int) -> None:
        """Batched page re-encryption through :mod:`repro.crypto.batch`.

        The page's lines are independent of each other and of the MAC-cache
        region, so lifting the crypto out of the per-slot loop cannot change
        any value; byte and counter equivalence with the scalar loop is
        pinned by ``tests/test_controller_edges.py``.
        """
        page_base = address - (address % COUNTER_BLOCK_COVERAGE)
        is_written = self.nvm.backend.is_written
        slots = [slot for slot in range(64)
                 if slot != skip_slot
                 and is_written(page_base + slot * CACHE_LINE_SIZE)]
        if not slots:
            return
        line_addresses = [page_base + slot * CACHE_LINE_SIZE
                          for slot in slots]
        old_counters = [old.counter_for(slot) for slot in slots]
        new_counters = [new.counter_for(slot) for slot in slots]
        buffer = self.nvm.read_arena(line_addresses, ReadKind.DATA)
        plaintext = self.aes.decrypt_batch(line_addresses, old_counters,
                                           buffer)
        new_ct = self.aes.encrypt_batch(line_addresses, new_counters,
                                        plaintext)
        macs = self.mac.block_mac_batch(
            MacKind.DATA_PROTECT, new_ct, line_addresses, new_counters,
            domain=MacDomain.DATA)
        for line_address, mac_value in zip(line_addresses, macs):
            self._store_data_mac(line_address, mac_value)
        assert new_ct is not None  # batched segments are functional
        self.nvm.write_arena(line_addresses, new_ct, WriteKind.DATA)

    # ------------------------------------------------------------------
    # Drain / recovery support
    # ------------------------------------------------------------------

    @property
    def metadata_caches(self) -> tuple[MetadataCache, ...]:
        return (self.counter_cache, self.tree_cache, self.mac_cache)

    def flush_metadata(self) -> None:
        """Drain-time step 2 (scheme-specific)."""
        self.drain_victims()
        self.scheme.flush_metadata(self)

    def line_bytes(self, line: MetaLine) -> bytes:
        """Serialize any metadata-cache line value to its 64 B wire form."""
        value = line.value
        if isinstance(value, SplitCounterBlock):
            return value.to_bytes()
        if isinstance(value, TreeNode):
            return value.to_bytes()
        return bytes(value)

    def drop_volatile_state(self) -> None:
        """Model a crash: all metadata caches lose their content.

        On-chip *persistent* registers (tree root, cache-tree root, drain
        counters held by the Horus engine) survive by definition.
        """
        for cache in self.metadata_caches:
            cache.clear()
        self._victims.clear()

    def restore_metadata_line(self, address: int, content: bytes) -> None:
        """Recovery hook: re-install a verified metadata block in its cache."""
        region = self.layout.classify(address)
        if region == "counters":
            cache: MetadataCache = self.counter_cache
            value: object = SplitCounterBlock.from_bytes(content)
        elif region == "tree":
            cache = self.tree_cache
            value = TreeNode(content)
        elif region == "macs":
            cache = self.mac_cache
            value = bytearray(content)
        else:
            raise ConfigError(
                f"{address:#x} ({region}) is not a metadata address")
        victim = cache.insert(MetaLine(address, value, dirty=True))
        if victim is not None and victim.dirty:
            raise ConfigError("metadata restore must not evict dirty lines")


def _meta_cache_config(name: str, size: int, ways: int) -> CacheConfig:
    if ways < 2:
        raise ConfigError(f"{name} needs at least 2 ways for safe evictions")
    return CacheConfig(name, size, ways, latency_cycles=1)
