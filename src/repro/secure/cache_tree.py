"""Anubis-style protection and recovery of the metadata-cache content.

With the lazy update scheme the main tree root is stale at a crash, so the
drained metadata-cache image in the shadow region is the authoritative state.
:class:`ShadowRecovery` reads the image back, rebuilds the small cache tree,
compares it with the on-chip root register, and re-installs every line in its
metadata cache — after which the system is exactly as consistent as it was at
the instant of the crash.
"""

from repro.common.constants import CACHE_LINE_SIZE
from repro.common.errors import IntegrityError, RecoveryError
from repro.mem.regions import tree_level_sizes
from repro.metadata.merkle import InMemoryMerkleTree
from repro.stats.events import MacKind, ReadKind


class ShadowRecovery:
    """Restores metadata caches from the shadow dump written at drain time."""

    def __init__(self, controller):
        self._controller = controller
        self.step_hook = None
        """Optional callback ``step_hook(position)`` invoked before each
        restored line (after the whole dump verified).  The campaign engine
        uses it to model a nested power cut
        (:class:`~repro.faults.plan.PowerInterrupt`) mid-restore; the
        shadow count is only cleared once every line is back, so an
        interrupted restore re-runs from the persistent dump."""

    def recover(self) -> int:
        """Read, verify, and restore the dump; returns lines restored."""
        controller = self._controller
        count = controller.shadow_count
        if count == 0:
            return 0
        if controller.cache_tree_root is None:
            raise RecoveryError("no cache-tree root was persisted at drain")

        shadow = controller.layout.shadow
        contents = [
            controller.nvm.read(shadow.block_at(i), ReadKind.SHADOW)
            for i in range(count)
        ]
        address_blocks = -(-count // 8)
        address_payloads: list[bytes] = []
        addresses: list[int] = []
        for i in range(address_blocks):
            raw = controller.nvm.read(shadow.block_at(count + i),
                                      ReadKind.SHADOW)
            address_payloads.append(raw)
            for j in range(8):
                addresses.append(
                    int.from_bytes(raw[j * 8:(j + 1) * 8], "little"))
        addresses = addresses[:count]

        # The address payload blocks are verified leaves alongside the
        # contents (see LazyUpdateScheme.flush_metadata): a tampered or torn
        # address block must fail verification, not re-home a line.
        arity = controller.layout.config.security.tree_arity
        num_leaves = count + address_blocks
        num_macs = num_leaves + sum(tree_level_sizes(num_leaves, arity))
        controller.stats.record_mac(MacKind.CACHE_TREE, num_macs)
        if controller.functional:
            root = InMemoryMerkleTree(contents + address_payloads, arity).root
            if root != controller.cache_tree_root:
                raise IntegrityError(
                    "metadata-cache shadow image failed verification")

        for position, (address, content) in enumerate(zip(addresses,
                                                          contents)):
            if self.step_hook is not None:
                self.step_hook(position)
            if len(content) != CACHE_LINE_SIZE:
                raise RecoveryError("short shadow block")
            controller.restore_metadata_line(address, content)
        controller.shadow_count = 0
        return count
