"""Run-time secure memory: controller, update schemes, recovery, audit."""

from repro.secure.audit import AuditReport, audit_memory
from repro.secure.cache_tree import ShadowRecovery
from repro.secure.controller import SecureMemoryController
from repro.secure.osiris import OsirisLazyScheme, OsirisRecovery
from repro.secure.schemes import (
    EagerUpdateScheme,
    LazyUpdateScheme,
    UpdateScheme,
    make_scheme,
)

__all__ = [
    "AuditReport",
    "audit_memory",
    "ShadowRecovery",
    "SecureMemoryController",
    "OsirisLazyScheme",
    "OsirisRecovery",
    "EagerUpdateScheme",
    "LazyUpdateScheme",
    "UpdateScheme",
    "make_scheme",
]
