"""Full-memory integrity audit.

Walks every written block of the protected data region through the complete
verification chain (counter fetch + tree walk + data MAC) and reports every
failure instead of stopping at the first.  Useful after a suspected physical
attack, and as the strongest functional test of the whole security stack:
an audit of an untampered system must be clean, and an audit after any
single-bit flip must name exactly the affected addresses.
"""

from dataclasses import dataclass, field

from repro.common.errors import IntegrityError
from repro.secure.controller import SecureMemoryController


@dataclass(frozen=True)
class AuditReport:
    """Outcome of one audit walk."""

    blocks_checked: int
    failures: list = field(default_factory=list)
    """(address, reason) pairs for every block that failed verification."""

    @property
    def clean(self) -> bool:
        return not self.failures

    @property
    def failed_addresses(self) -> list[int]:
        return [address for address, _ in self.failures]


def audit_memory(controller: SecureMemoryController,
                 fail_fast: bool = False) -> AuditReport:
    """Verify every written data block; collect (or raise) failures.

    Note the audit reads through the controller, so it warms the metadata
    caches and accounts its own memory traffic — like a real scrubber would.
    """
    failures = []
    checked = 0
    data_region = controller.layout.data
    for address in list(controller.nvm.backend.written_addresses()):
        if not data_region.contains(address):
            continue
        checked += 1
        try:
            controller.read(address)
        except IntegrityError as error:
            if fail_fast:
                raise
            failures.append((address, str(error)))
    return AuditReport(blocks_checked=checked, failures=failures)
