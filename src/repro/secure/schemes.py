"""Integrity-tree update schemes (Section II-C).

*Eager*: every data write propagates fresh MACs up the whole tree path, so
the on-chip root is always consistent with memory — simple recovery, many MAC
computations.

*Lazy*: a write only dirties the cached counter block; parents are updated
when dirty children are evicted.  Fast at run time, but the root is stale at
a crash, so draining must protect the metadata-cache content with a small
eagerly-maintained tree (Anubis-style) and dump it to a reserved region.

The scheme objects hold no state of their own; they are strategy hooks the
:class:`~repro.secure.controller.SecureMemoryController` calls at the three
points where the schemes differ.
"""

from abc import ABC, abstractmethod

from repro.mem.regions import tree_level_sizes
from repro.metadata.merkle import InMemoryMerkleTree
from repro.stats.events import MacKind, WriteKind


class UpdateScheme(ABC):
    """Strategy interface for integrity-tree maintenance."""

    name: str = "abstract"

    @abstractmethod
    def on_data_write(self, controller, counter_line) -> None:
        """Called after a data write updated the cached counter block."""

    @abstractmethod
    def needs_parent_update_on_writeback(self) -> bool:
        """Whether a dirty metadata writeback must refresh its parent slot."""

    @abstractmethod
    def flush_metadata(self, controller) -> None:
        """Drain-time step 2: make the metadata-cache state recoverable."""


class EagerUpdateScheme(UpdateScheme):
    """Update the whole path to the root on every write."""

    name = "eager"

    def on_data_write(self, controller, counter_line) -> None:
        counter_line.dirty = True
        controller.propagate_to_root(counter_line)

    def needs_parent_update_on_writeback(self) -> bool:
        return False

    def flush_metadata(self, controller) -> None:
        """The root is current: dirty metadata flushes to its home addresses."""
        for cache, kind in (
            (controller.counter_cache, WriteKind.COUNTER),
            (controller.tree_cache, WriteKind.TREE_NODE),
            (controller.mac_cache, WriteKind.DATA_MAC),
        ):
            for line in cache.dirty_lines():
                controller.nvm.write(line.address,
                                     controller.line_bytes(line), kind)
                line.dirty = False


class LazyUpdateScheme(UpdateScheme):
    """Defer parent updates to dirty evictions; Anubis-protect the cache."""

    name = "lazy"

    def on_data_write(self, controller, counter_line) -> None:
        counter_line.dirty = True

    def needs_parent_update_on_writeback(self) -> bool:
        return True

    def flush_metadata(self, controller) -> None:
        """Hash the metadata-cache content with a small eager tree and dump
        it (content + addresses) to the reserved shadow region.

        The address payload blocks are tree leaves too: the address is what
        tells recovery *where* a line belongs, so an unauthenticated address
        block would let a crash (or adversary) silently re-home restored
        metadata.
        """
        lines = [line for cache in controller.metadata_caches
                 for line in cache.lines()]
        if not lines:
            controller.cache_tree_root = None
            return

        # One 64 B block of 8 original addresses per 8 dumped lines, so
        # recovery can put the content back where it belongs.
        address_payloads = []
        for start in range(0, len(lines), 8):
            group = lines[start:start + 8]
            payload = b"".join(line.address.to_bytes(8, "little")
                               for line in group)
            address_payloads.append(payload.ljust(64, b"\0"))

        arity = controller.layout.config.security.tree_arity
        num_leaves = len(lines) + len(address_payloads)
        num_macs = num_leaves + sum(tree_level_sizes(num_leaves, arity))
        controller.stats.record_mac(MacKind.CACHE_TREE, num_macs)
        if controller.functional:
            contents = [controller.line_bytes(line) for line in lines]
            controller.cache_tree_root = InMemoryMerkleTree(
                contents + address_payloads, arity).root
        else:
            controller.cache_tree_root = b"\0" * 8

        shadow = controller.layout.shadow
        index = 0
        for line in lines:
            controller.nvm.write(shadow.block_at(index),
                                 controller.line_bytes(line),
                                 WriteKind.SHADOW)
            index += 1
        for payload in address_payloads:
            controller.nvm.write(shadow.block_at(index), payload,
                                 WriteKind.SHADOW)
            index += 1
        controller.shadow_count = len(lines)


def make_scheme(name: str) -> UpdateScheme:
    """Factory: ``"lazy"`` or ``"eager"``."""
    schemes = {"lazy": LazyUpdateScheme, "eager": EagerUpdateScheme}
    try:
        return schemes[name]()
    except KeyError:
        raise ValueError(
            f"unknown update scheme {name!r}; expected one of {sorted(schemes)}"
        ) from None
