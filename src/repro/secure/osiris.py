"""Osiris-style counter recovery (paper ref [34], used per Section II-C).

Osiris observes that encryption counters need not be persisted on every
write: with a *stop-loss* of K, the NVM copy of a counter is at most K
increments stale, and the correct value is recoverable after a crash by
trying the K+1 candidates against the data block's MAC (which is computed
over ciphertext, address, and counter, so exactly one candidate verifies).

This gives the lazy scheme an alternative to the Anubis-style shadow dump:
nothing extra is written at drain time, at the price of a recovery pass that
(1) trial-verifies counters and (2) rebuilds the integrity tree over every
written counter block — the availability-vs-drain-budget trade-off the
paper's goals enumerate.

:class:`OsirisLazyScheme` adds the stop-loss write-through to the lazy
scheme; :class:`OsirisRecovery` performs the post-crash reconstruction.
"""

from dataclasses import dataclass

from repro.common.constants import CACHE_LINE_SIZE, COUNTER_BLOCK_COVERAGE
from repro.common.errors import ConfigError, RecoveryError
from repro.crypto.counters import SplitCounterBlock
from repro.crypto.primitives import MacDomain
from repro.secure.schemes import LazyUpdateScheme
from repro.stats.counters import SimStats
from repro.stats.events import MacKind, ReadKind, WriteKind

DEFAULT_STOP_LOSS = 8


class OsirisLazyScheme(LazyUpdateScheme):
    """Lazy tree updates + stop-loss counter write-through, no shadow dump."""

    name = "osiris"

    def __init__(self, stop_loss: int = DEFAULT_STOP_LOSS):
        if stop_loss <= 0:
            raise ConfigError("stop-loss must be positive")
        self.stop_loss = stop_loss

    def on_data_write(self, controller, counter_line) -> None:
        counter_line.dirty = True
        block = counter_line.value
        # Persist the counter block every stop_loss-th update, so the NVM
        # copy is never more than stop_loss-1 increments behind; also force
        # a persist right after a minor-counter overflow (the page was just
        # re-encrypted under a new major, and recovery's candidate trial
        # must never have to cross a minor-counter wrap).
        # Persist every stop_loss-th update of the block.  A never-persisted
        # block reads back as all-zero counters, which is itself a valid
        # stale state within stop-loss of the truth — recovery enumerates
        # touched counter blocks from the written *data* addresses, so
        # nothing needs to persist on first touch.
        total = sum(block.minors) + block.major
        just_overflowed = block.major > 0 and max(block.minors) == 0
        if total % self.stop_loss == 0 or just_overflowed:
            controller.nvm.write(counter_line.address,
                                 block.to_bytes(), WriteKind.COUNTER)

    def flush_metadata(self, controller) -> None:
        """No shadow dump — but the data MACs are the recovery oracle, so
        dirty MAC blocks flush to their home addresses (cheap: 8 data MACs
        per block).  Counters and tree nodes are reconstructed instead."""
        for line in controller.mac_cache.dirty_lines():
            controller.nvm.write(line.address, controller.line_bytes(line),
                                 WriteKind.DATA_MAC)
            line.dirty = False
        controller.cache_tree_root = None
        controller.shadow_count = 0


@dataclass(frozen=True)
class OsirisRecoveryReport:
    """What the reconstruction pass did."""

    counters_recovered: int
    trials: int
    tree_nodes_rebuilt: int
    stats: SimStats


class OsirisRecovery:
    """Post-crash counter reconstruction + full tree rebuild."""

    def __init__(self, controller, stop_loss: int = DEFAULT_STOP_LOSS):
        if stop_loss <= 0:
            raise ConfigError("stop-loss must be positive")
        self._controller = controller
        self._stop_loss = stop_loss

    def recover(self) -> OsirisRecoveryReport:
        controller = self._controller
        before = controller.stats.copy()
        recovered, trials = self._recover_counters()
        rebuilt = self._rebuild_tree()
        return OsirisRecoveryReport(
            counters_recovered=recovered,
            trials=trials,
            tree_nodes_rebuilt=rebuilt,
            stats=controller.stats.diff(before),
        )

    # ------------------------------------------------------------------

    def _written_counter_addresses(self) -> list[int]:
        """Counter blocks covering any written data block.

        Derived from the data region (not from persisted counter blocks):
        a block that was never stop-loss-persisted legitimately reads back
        as all-zero counters and still needs recovery and a tree slot.
        """
        controller = self._controller
        layout = controller.layout
        covered = {
            layout.counter_block_address(address)
            for address in controller.nvm.backend.written_addresses()
            if layout.data.contains(address)
        }
        return sorted(covered)

    def _recover_counters(self) -> tuple[int, int]:
        """Advance each stale NVM counter to the value that verifies."""
        controller = self._controller
        layout = controller.layout
        recovered = 0
        trials = 0
        for cb_address in self._written_counter_addresses():
            raw = controller.nvm.read(cb_address, ReadKind.COUNTER)
            block = SplitCounterBlock.from_bytes(raw)
            changed = False
            page_base = ((cb_address - layout.counters.base)
                         // CACHE_LINE_SIZE) * COUNTER_BLOCK_COVERAGE
            for slot in range(64):
                data_address = page_base + slot * CACHE_LINE_SIZE
                if not controller.nvm.backend.is_written(data_address):
                    continue
                ciphertext = controller.nvm.read(data_address, ReadKind.DATA)
                stored_mac = self._stored_mac(data_address)
                base_value = block.counter_for(slot)
                # The forced persist on overflow guarantees the true value
                # lies within the same minor-counter epoch.
                max_delta = min(self._stop_loss, 127 - block.minors[slot])
                for delta in range(max_delta + 1):
                    trials += 1
                    candidate = base_value + delta
                    mac = controller.mac.block_mac(
                        MacKind.VERIFY, ciphertext, data_address, candidate,
                        domain=MacDomain.DATA)
                    if controller.mac.verify_equal(stored_mac, mac):
                        if delta:
                            self._apply_delta(block, slot, delta)
                            changed = True
                        recovered += 1
                        break
                else:
                    raise RecoveryError(
                        f"no counter candidate within stop-loss verified "
                        f"{data_address:#x} (tampering or loss beyond K)")
            if changed:
                controller.nvm.write(cb_address, block.to_bytes(),
                                     WriteKind.COUNTER)
        return recovered, trials

    def _stored_mac(self, data_address: int) -> bytes:
        controller = self._controller
        raw = controller.nvm.read(
            controller.layout.mac_block_address(data_address), ReadKind.MAC)
        slot = controller.layout.mac_slot(data_address)
        return raw[slot * 8:(slot + 1) * 8]

    @staticmethod
    def _apply_delta(block: SplitCounterBlock, slot: int, delta: int) -> None:
        for _ in range(delta):
            block.increment(slot)

    # ------------------------------------------------------------------

    def _rebuild_tree(self) -> int:
        """Recompute every tree node on the path of any written counter
        block, bottom-up, and refresh the on-chip root.

        The rebuild trusts nothing on-NVM above the (now-verified) counter
        blocks; every recomputed node is written back, so the system comes
        back with an eagerly-consistent tree.
        """
        controller = self._controller
        layout = controller.layout
        mac = controller.mac

        # Level 1 slots from recovered counter blocks.
        dirty_nodes: dict[tuple[int, int], dict[int, bytes]] = {}
        for cb_address in self._written_counter_addresses():
            raw = controller.nvm.read(cb_address, ReadKind.COUNTER)
            level, index, slot = layout.parent_of_counter_block(cb_address)
            dirty_nodes.setdefault((level, index), {})[slot] = \
                mac.digest_mac(MacKind.TREE_UPDATE, raw,
                               domain=MacDomain.NODE)

        rebuilt = 0
        level = 1
        while True:
            this_level = {key: slots for key, slots in dirty_nodes.items()
                          if key[0] == level}
            if not this_level and level > layout.num_tree_levels:
                break
            next_nodes: dict[tuple[int, int], dict[int, bytes]] = {}
            for (node_level, index), slots in this_level.items():
                address = layout.tree_node_address(node_level, index)
                raw = controller.nvm.read(address, ReadKind.TREE_NODE)
                if not controller.nvm.backend.is_written(address):
                    raw = controller._defaults.content(node_level)
                node = bytearray(raw)
                for slot, value in slots.items():
                    node[slot * 8:(slot + 1) * 8] = value
                content = bytes(node)
                controller.nvm.write(address, content, WriteKind.TREE_NODE)
                rebuilt += 1
                node_mac = mac.digest_mac(MacKind.TREE_UPDATE, content,
                                          domain=MacDomain.NODE)
                if node_level == layout.num_tree_levels:
                    controller.root_mac = node_mac
                else:
                    plevel, pindex, pslot = layout.parent_of_tree_node(
                        node_level, index)
                    next_nodes.setdefault((plevel, pindex), {})[pslot] = \
                        node_mac
            dirty_nodes = {key: slots for key, slots in dirty_nodes.items()
                           if key[0] != level}
            dirty_nodes.update(next_nodes)
            level += 1
            if level > layout.num_tree_levels and not dirty_nodes:
                break
        return rebuilt
