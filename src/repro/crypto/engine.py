"""Timed crypto engines.

The engines wrap the pure primitives with (a) operation accounting into a
:class:`~repro.stats.counters.SimStats` — the quantities Figures 13/15 report —
and (b) an optional non-functional mode where values are not actually computed
(counting-only), which speeds up pure performance experiments.
"""

from collections.abc import Sequence
from typing import Protocol

from repro.common.constants import CACHE_LINE_SIZE, MAC_SIZE
from repro.crypto import batch
from repro.crypto.primitives import (
    MacDomain,
    compute_mac,
    decrypt_block,
    encrypt_block,
    int_field,
)
from repro.stats.counters import SimStats
from repro.stats.events import AesKind, MacKind

_PLACEHOLDER_MAC = bytes(MAC_SIZE)

_BLOCK_DOMAINS = {MacKind.CHV_DATA: MacDomain.CHV_DATA}
_DIGEST_DOMAINS = {MacKind.CHV_LEVEL2: MacDomain.CHV_LEVEL2}

DEFAULT_AES_KEY = b"repro-horus-aes-key-0001"
DEFAULT_MAC_KEY = b"repro-horus-mac-key-0001"


def block_domain(kind: MacKind, domain: MacDomain | None) -> MacDomain:
    """Resolve a block-MAC call's protection domain from its ``kind``.

    Compute sites inherit the domain from ``kind`` (``MacKind.CHV_DATA`` →
    the CHV domain, everything else the run-time data domain); verify sites
    pass ``domain`` explicitly.  Public so keyed engine subclasses resolve
    domains identically to the base engine.
    """
    if domain is not None:
        return domain
    return _BLOCK_DOMAINS.get(kind, MacDomain.DATA)


def digest_domain(kind: MacKind, domain: MacDomain | None) -> MacDomain:
    """Resolve a digest-MAC call's domain (``CHV_LEVEL2`` → DLM level 2)."""
    if domain is not None:
        return domain
    return _DIGEST_DOMAINS.get(kind, MacDomain.NODE)


class AesEngine:
    """Counter-mode encryption engine (one pad generation per operation)."""

    def __init__(self, stats: SimStats, key: bytes = DEFAULT_AES_KEY,
                 functional: bool = True) -> None:
        self._stats = stats
        self._key = key
        self.functional = functional

    def encrypt(self, address: int, counter: int, plaintext: bytes | None) -> bytes | None:
        """Encrypt one block; accounts one AES operation."""
        self._stats.record_aes(AesKind.ENCRYPT)
        if not self.functional or plaintext is None:
            return plaintext
        return encrypt_block(self._key, address, counter, plaintext)

    def decrypt(self, address: int, counter: int, ciphertext: bytes | None) -> bytes | None:
        """Decrypt one block; accounts one AES operation."""
        self._stats.record_aes(AesKind.DECRYPT)
        if not self.functional or ciphertext is None:
            return ciphertext
        return decrypt_block(self._key, address, counter, ciphertext)

    def encrypt_batch(self, addresses: Sequence[int],
                      counters: Sequence[int],
                      plaintext: bytes | bytearray | memoryview | None,
                      frames: batch.Frames = None) -> bytes | None:
        """Encrypt a contiguous batch; accounts one AES op per block.

        ``plaintext`` is the concatenation of the batch's blocks, or
        ``None`` in non-functional mode — the return is then ``None`` too
        (each block's ciphertext is ``None``, as in the scalar path;
        callers substitute zero blocks at write time).  ``frames`` shares a
        :func:`repro.crypto.batch.counter_frames` pass with the MAC engine.
        """
        self._stats.record_aes(AesKind.ENCRYPT, len(addresses))
        if not self.functional or plaintext is None:
            return None
        return batch.encrypt_blocks(self._key, addresses, counters,
                                    plaintext, frames)

    def decrypt_batch(self, addresses: Sequence[int],
                      counters: Sequence[int],
                      ciphertext: bytes | bytearray | memoryview | None,
                      frames: batch.Frames = None) -> bytes | None:
        """Decrypt a contiguous batch; accounts one AES op per block."""
        self._stats.record_aes(AesKind.DECRYPT, len(addresses))
        if not self.functional or ciphertext is None:
            return None
        return batch.decrypt_blocks(self._key, addresses, counters,
                                    ciphertext, frames)


class MacEngine:
    """MAC engine; every call is one hash-latency operation."""

    def __init__(self, stats: SimStats, key: bytes = DEFAULT_MAC_KEY,
                 functional: bool = True) -> None:
        self._stats = stats
        self._key = key
        self.functional = functional

    def block_mac(self, kind: MacKind, ciphertext: bytes | None,
                  address: int, counter: int,
                  domain: MacDomain | None = None) -> bytes:
        """MAC over (ciphertext, address, counter): the BMT-style data MAC and
        the Horus CHV MAC are both this shape.

        The value is domain-separated: compute sites inherit the domain from
        ``kind`` (``MacKind.CHV_DATA`` → the CHV domain, everything else the
        run-time data domain); verify sites (``MacKind.VERIFY``) must pass
        ``domain`` explicitly when checking a non-run-time MAC, so a MAC can
        never verify outside the domain it was written for.
        """
        self._stats.record_mac(kind)
        if not self.functional or ciphertext is None:
            return _PLACEHOLDER_MAC
        return compute_mac(self._key, ciphertext, int_field(address),
                           int_field(counter, 16),
                           domain=block_domain(kind, domain))

    def node_mac(self, kind: MacKind, content: bytes | None,
                 address: int) -> bytes:
        """MAC over a 64 B metadata block bound to its address (tree slots)."""
        self._stats.record_mac(kind)
        if not self.functional or content is None:
            return _PLACEHOLDER_MAC
        return compute_mac(self._key, content, int_field(address),
                           domain=MacDomain.NODE)

    def digest_mac(self, kind: MacKind, content: bytes | None,
                   domain: MacDomain | None = None) -> bytes:
        """MAC over raw content (Horus-DLM second level, cache-tree levels).

        Domain-separated like :meth:`block_mac`: ``MacKind.CHV_LEVEL2``
        implies the DLM second-level domain, everything else the metadata
        node domain; verifiers of DLM MACs pass ``domain`` explicitly.
        """
        self._stats.record_mac(kind)
        if not self.functional or content is None:
            return _PLACEHOLDER_MAC
        return compute_mac(self._key, content,
                           domain=digest_domain(kind, domain))

    def block_mac_batch(self, kind: MacKind,
                        buffer: bytes | bytearray | memoryview | None,
                        addresses: Sequence[int], counters: Sequence[int],
                        domain: MacDomain | None = None,
                        frames: batch.Frames = None) -> list[bytes]:
        """Batched :meth:`block_mac`: one accounted MAC per element.

        ``buffer`` holds the batch's ciphertext blocks contiguously;
        ``None`` is the non-functional form (placeholder MACs, same as the
        scalar path with ``ciphertext=None``).  Domain resolution is
        identical to :meth:`block_mac`; ``frames`` shares a
        :func:`repro.crypto.batch.counter_frames` pass with the AES engine.
        """
        count = len(addresses)
        self._stats.record_mac(kind, count)
        if not self.functional or buffer is None:
            return [_PLACEHOLDER_MAC] * count
        return batch.compute_block_macs(self._key, buffer, addresses,
                                        counters, block_domain(kind, domain),
                                        frames)

    def digest_mac_batch(self, kind: MacKind,
                         contents: Sequence[bytes | memoryview] | None,
                         count: int,
                         domain: MacDomain | None = None) -> list[bytes]:
        """Batched :meth:`digest_mac` over ``count`` raw contents."""
        self._stats.record_mac(kind, count)
        if not self.functional or contents is None:
            return [_PLACEHOLDER_MAC] * count
        return batch.compute_macs(self._key,
                                  ((content,) for content in contents),
                                  domain=digest_domain(kind, domain))

    def verify_equal(self, expected: bytes, actual: bytes) -> bool:
        """Compare MACs; in non-functional mode everything verifies."""
        if not self.functional:
            return True
        return expected == actual


class KeySchedule(Protocol):
    """Factory for the engine pair a secure controller runs on.

    The controller builds its engines at construction time and downstream
    components (the Horus drain engine in particular) capture direct
    references to them, so alternate keying — per-tenant key domains, key
    rotation studies — must be injected *before* the controller wires
    itself up.  Anything with this shape can be passed as the
    ``key_schedule`` of :class:`~repro.core.system.SecureEpdSystem` /
    :class:`~repro.secure.controller.SecureMemoryController`; the default
    (``None``) is the plain master-keyed pair.
    """

    def build(self, stats: SimStats,
              functional: bool) -> "tuple[AesEngine, MacEngine]":
        """Return the (AES engine, MAC engine) pair for one controller."""
        ...


def zero_block() -> bytes:
    """A fresh all-zero 64 B block."""
    return bytes(CACHE_LINE_SIZE)
