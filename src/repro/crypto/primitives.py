"""Cryptographic primitives.

The paper's hardware uses AES for counter-mode pads and a SHA-class hash for
MACs.  The reproduction substitutes keyed BLAKE2b (stdlib, C speed) for both:
counter-mode security rests on pad uniqueness per (key, address, counter) and
MAC security on keyed collision resistance — both structural properties this
substitution preserves (see DESIGN.md).  Latency is modelled separately by the
engines in :mod:`repro.crypto.engine`.
"""

import hashlib
from enum import Enum, unique

from repro.common.constants import CACHE_LINE_SIZE, MAC_SIZE

PAD_DOMAIN = b"horus-pad"
MAC_DOMAIN = b"horus-mac"


@unique
class MacDomain(Enum):
    """Domain-separation tag mixed into every MAC.

    Without it, a run-time data MAC and a CHV MAC over the same
    (ciphertext, address, counter) are the same value, so an adversary can
    splice one protection domain's MAC into another's and still verify.
    The tags are fixed-width (4 bytes) so framing stays injective.
    """

    DATA = b"dat\0"
    """Run-time BMT-style data MAC over (ciphertext, address, counter)."""

    NODE = b"nod\0"
    """Metadata digests: tree-node slots, cache-tree levels."""

    CHV_DATA = b"chv1"
    """Horus CHV first-level MAC over a vaulted block."""

    CHV_LEVEL2 = b"chv2"
    """Horus-DLM second-level MAC over 8 first-level MACs."""

_BLOCK_MASK = (1 << (8 * CACHE_LINE_SIZE)) - 1


def generate_pad(key: bytes, address: int, counter: int) -> bytes:
    """One-time pad for counter-mode encryption of one 64 B block.

    Spatial uniqueness comes from ``address``, temporal uniqueness from
    ``counter`` — exactly the CME construction of Fig. 2 in the paper.
    """
    h = hashlib.blake2b(key=key, digest_size=CACHE_LINE_SIZE)
    h.update(PAD_DOMAIN)
    h.update(address.to_bytes(8, "little"))
    h.update(counter.to_bytes(16, "little"))
    return h.digest()


def xor_block(a: bytes, b: bytes) -> bytes:
    """Bitwise XOR of two 64 B blocks (the 1-cycle CME step)."""
    return (
        (int.from_bytes(a, "little") ^ int.from_bytes(b, "little")) & _BLOCK_MASK
    ).to_bytes(CACHE_LINE_SIZE, "little")


def encrypt_block(key: bytes, address: int, counter: int, plaintext: bytes) -> bytes:
    """Counter-mode encryption of one block."""
    return xor_block(plaintext, generate_pad(key, address, counter))


def decrypt_block(key: bytes, address: int, counter: int, ciphertext: bytes) -> bytes:
    """Counter-mode decryption (identical to encryption by construction)."""
    return xor_block(ciphertext, generate_pad(key, address, counter))


def compute_mac(key: bytes, *parts: bytes,
                domain: MacDomain = MacDomain.NODE) -> bytes:
    """8 B keyed MAC over the concatenation of ``parts``.

    ``domain`` separates the library's MAC uses cryptographically: equal
    inputs under different domains yield unrelated values, so a MAC can
    never verify outside the protection domain it was computed for.

    Callers are responsible for unambiguous framing: all library call sites
    pass fixed-width fields (addresses and counters as 8/16-byte integers,
    blocks as 64 B), so concatenation is injective.
    """
    h = hashlib.blake2b(key=key, digest_size=MAC_SIZE)
    h.update(MAC_DOMAIN)
    h.update(domain.value)
    for part in parts:
        h.update(part)
    return h.digest()


def int_field(value: int, width: int = 8) -> bytes:
    """Fixed-width little-endian encoding for MAC inputs."""
    return value.to_bytes(width, "little")
