"""Contiguous buffer arena for the epoch hot paths.

The batched engines in :mod:`repro.crypto.batch` removed the per-block
*crypto* overhead, but the surrounding plumbing still marshalled every
episode through lists of 64 B ``bytes`` objects: counter frames were built
one ``to_bytes`` concatenation at a time, address/MAC payload blocks were
``b"".join``-ed group by group, and ciphertext was split back into N
fresh objects just to be re-joined by the memory layer.  This module is
the shared substrate that removes those round-trips:

* a :class:`BlockArena` holds a whole epoch's blocks in one
  ``bytearray``/``memoryview`` and hands out zero-copy per-block views;
* ``pack_u64``/``unpack_u64``/``tile_u64`` convert between integer lanes
  and little-endian byte buffers in bulk (numpy u64 lanes where
  available, pure Python otherwise);
* ``frame_buffer`` assembles all 24 B (address, counter) hash frames of a
  batch as one contiguous buffer;
* ``xor_bytes`` is the counter-mode XOR kernel over whole buffers.

Every kernel is *value-transparent*: the numpy path and the pure-Python
path produce byte-identical output (property-tested against the scalar
primitives in ``tests/test_prop_arena.py``), and ``REPRO_ARENA=0`` forces
the pure path so CI can hold both to the same oracle.  Inputs that the
u64 lanes cannot represent (counters at or above 2**64) transparently
fall back to the arbitrary-precision path.
"""

import os
from collections.abc import Iterator, Sequence
from typing import Any

from repro.common.constants import CACHE_LINE_SIZE

_np: Any
try:
    import numpy
except ImportError:  # pragma: no cover - numpy is an optional extra
    _np = None
else:
    _np = numpy

FRAME_SIZE = 24
"""One (address, counter) hash frame: 8 B address + 16 B counter."""

_U64_MAX = (1 << 64) - 1


def arena_accelerated(override: bool | None = None) -> bool:
    """Whether the numpy u64 lanes are in use.

    ``REPRO_ARENA=0`` forces the pure-Python kernels (the CI leg that
    mirrors a numpy-less install); anything else uses numpy whenever it
    is importable.  An explicit ``override`` always wins, but can only
    enable acceleration if numpy is actually present.
    """
    if _np is None:
        return False
    if override is not None:
        return override
    return os.environ.get("REPRO_ARENA", "1") != "0"


def pack_u64(values: Sequence[int]) -> bytes:
    """``values`` as consecutive little-endian u64 lanes.

    Equals ``b"".join(v.to_bytes(8, "little") for v in values)``; values
    outside the u64 range fall back to the arbitrary-precision path
    (where they raise ``OverflowError`` exactly as ``to_bytes`` would).
    """
    if arena_accelerated() and len(values) > 1:
        try:
            return bytes(_np.asarray(values, dtype="<u8").tobytes())
        except (OverflowError, TypeError, ValueError):
            pass  # value outside u64 — the scalar path raises precisely
    return b"".join(value.to_bytes(8, "little") for value in values)


def unpack_u64(buffer: bytes | bytearray | memoryview) -> list[int]:
    """Little-endian u64 lanes back to a list of ints (pack_u64 inverse)."""
    if len(buffer) % 8:
        raise ValueError(f"buffer length {len(buffer)} not a multiple of 8")
    if arena_accelerated() and len(buffer) > 8:
        lanes: list[int] = _np.frombuffer(buffer, dtype="<u8").tolist()
        return lanes
    return [int.from_bytes(buffer[i:i + 8], "little")
            for i in range(0, len(buffer), 8)]


def tile_u64(values: Sequence[int], lanes: int) -> bytes:
    """Each value's 8 B little-endian form repeated ``lanes`` times.

    ``tile_u64([a], 8)`` is one 64 B pattern block; over a whole fill's
    address list it assembles every pattern payload in one pass.
    """
    if arena_accelerated() and len(values) > 1:
        try:
            return bytes(_np.repeat(
                _np.asarray(values, dtype="<u8"), lanes).tobytes())
        except (OverflowError, TypeError, ValueError):
            pass
    return b"".join(value.to_bytes(8, "little") * lanes for value in values)


def frame_buffer(addresses: Sequence[int], counters: Sequence[int]) -> bytes:
    """All 24 B (address, counter) frames of a batch, contiguously.

    Byte ``24*i .. 24*i+23`` equals ``addresses[i].to_bytes(8, "little")
    + counters[i].to_bytes(16, "little")`` — i.e. the buffer is exactly
    ``b"".join(counter_frames(addresses, counters))``.  Counters at or
    above 2**64 (or any non-u64 input) take the arbitrary-precision
    path, so the output never depends on which kernel ran.
    """
    count = len(addresses)
    if count != len(counters):
        raise ValueError("addresses and counters must have equal length")
    if arena_accelerated() and count > 1:
        try:
            frames = _np.zeros((count, 3), dtype="<u8")
            frames[:, 0] = _np.asarray(addresses, dtype="<u8")
            if isinstance(counters, range):
                if not (0 <= counters.start
                        and counters[-1] <= _U64_MAX
                        and counters[0] <= _U64_MAX):
                    raise OverflowError
                frames[:, 1] = _np.arange(
                    counters.start, counters.stop, counters.step,
                    dtype="<u8")
            else:
                frames[:, 1] = _np.asarray(counters, dtype="<u8")
            return bytes(frames.tobytes())
        except (OverflowError, TypeError, ValueError):
            pass  # counter/address outside u64 lanes
    return b"".join(
        address.to_bytes(8, "little") + counter.to_bytes(16, "little")
        for address, counter in zip(addresses, counters))


def frame_views(frames: bytes | memoryview,
                count: int) -> Iterator[memoryview]:
    """Zero-copy 24 B frame slices of a :func:`frame_buffer` result."""
    if len(frames) != FRAME_SIZE * count:
        raise ValueError(
            f"frame buffer must be {FRAME_SIZE} B per block, got "
            f"{len(frames)} B for {count} blocks")
    view = memoryview(frames)
    return (view[offset:offset + FRAME_SIZE]
            for offset in range(0, FRAME_SIZE * count, FRAME_SIZE))


def xor_bytes(a: bytes | bytearray | memoryview,
              b: bytes | bytearray | memoryview) -> bytes:
    """XOR two equal-length buffers (u64 lanes, or one big-int op).

    The counter-mode kernel: over a whole episode's concatenated blocks
    this is one vectorized pass instead of N per-block conversions.
    """
    if len(a) != len(b):
        raise ValueError(f"buffer lengths differ: {len(a)} != {len(b)}")
    if arena_accelerated() and len(a) > 8 and len(a) % 8 == 0:
        return bytes((_np.frombuffer(a, dtype="<u8")
                      ^ _np.frombuffer(b, dtype="<u8")).tobytes())
    return (int.from_bytes(a, "little")
            ^ int.from_bytes(b, "little")).to_bytes(len(a), "little")


class BlockArena:
    """A batch of 64 B blocks stored in one contiguous buffer.

    The arena is the common currency of the batched hot paths: crypto
    kernels produce/consume its backing buffer whole, the memory layer
    slices it per block exactly once at the storage boundary, and
    everything in between hands around zero-copy ``memoryview`` windows
    instead of per-block ``bytes`` objects.
    """

    __slots__ = ("count", "_buffer", "_view")

    def __init__(self, count: int,
                 buffer: bytearray | bytes | None = None) -> None:
        if count < 0:
            raise ValueError(f"negative block count: {count}")
        size = count * CACHE_LINE_SIZE
        if buffer is None:
            buffer = bytearray(size)
        elif len(buffer) != size:
            raise ValueError(
                f"buffer length {len(buffer)} does not hold {count} "
                f"blocks of {CACHE_LINE_SIZE} B")
        self.count = count
        self._buffer = buffer
        self._view = memoryview(buffer)

    @classmethod
    def from_buffer(cls, buffer: bytearray | bytes) -> "BlockArena":
        """Wrap an existing contiguous buffer; length must be 64 B-aligned."""
        if len(buffer) % CACHE_LINE_SIZE:
            raise ValueError(
                f"buffer length {len(buffer)} not a multiple of "
                f"{CACHE_LINE_SIZE}")
        return cls(len(buffer) // CACHE_LINE_SIZE, buffer)

    @classmethod
    def from_block(cls, block: bytes) -> "BlockArena":
        """A one-block arena (the scalar form of :meth:`from_blocks`)."""
        return cls(1, block)

    @classmethod
    def from_blocks(cls, blocks: Sequence[bytes]) -> "BlockArena":
        """Copy a list of 64 B blocks into one contiguous arena."""
        return cls(len(blocks), b"".join(blocks))

    def __len__(self) -> int:
        return self.count

    def _bounds(self, index: int) -> int:
        if not 0 <= index < self.count:
            raise IndexError(
                f"block {index} out of range for {self.count}-block arena")
        return index * CACHE_LINE_SIZE

    def view(self, index: int) -> memoryview:
        """Zero-copy window onto block ``index``."""
        offset = self._bounds(index)
        return self._view[offset:offset + CACHE_LINE_SIZE]

    def block(self, index: int) -> bytes:
        """Block ``index`` as an owned ``bytes`` copy."""
        offset = self._bounds(index)
        return bytes(self._view[offset:offset + CACHE_LINE_SIZE])

    def store(self, index: int, data: bytes | bytearray | memoryview) -> None:
        """Copy one 64 B block into slot ``index`` (buffer must be mutable)."""
        if len(data) != CACHE_LINE_SIZE:
            raise ValueError(
                f"block must be {CACHE_LINE_SIZE} B, got {len(data)} B")
        offset = self._bounds(index)
        self._view[offset:offset + CACHE_LINE_SIZE] = data

    def views(self) -> Iterator[memoryview]:
        """Zero-copy windows onto every block, in order."""
        return (self._view[offset:offset + CACHE_LINE_SIZE]
                for offset in range(0, self.count * CACHE_LINE_SIZE,
                                    CACHE_LINE_SIZE))

    def blocks(self) -> list[bytes]:
        """All blocks as owned ``bytes`` copies (the list-of-blocks form)."""
        return [bytes(self._view[offset:offset + CACHE_LINE_SIZE])
                for offset in range(0, self.count * CACHE_LINE_SIZE,
                                    CACHE_LINE_SIZE)]

    def buffer(self) -> memoryview:
        """The whole arena as one zero-copy view."""
        return self._view

    def tobytes(self) -> bytes:
        """The whole arena as one owned ``bytes`` buffer."""
        return bytes(self._buffer)
