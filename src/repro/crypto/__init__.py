"""Crypto substrate: CME primitives, timed engines, split and drain counters."""

from repro.crypto.counters import DrainCounter, SplitCounterBlock
from repro.crypto.engine import AesEngine, MacEngine
from repro.crypto.primitives import (
    compute_mac,
    decrypt_block,
    encrypt_block,
    generate_pad,
    xor_block,
)

__all__ = [
    "DrainCounter",
    "SplitCounterBlock",
    "AesEngine",
    "MacEngine",
    "compute_mac",
    "decrypt_block",
    "encrypt_block",
    "generate_pad",
    "xor_block",
]
