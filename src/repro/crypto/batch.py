"""Batched cryptographic primitives for the drain/verify hot paths.

The scalar primitives in :mod:`repro.crypto.primitives` pay their cost in
Python call overhead, not in hashing: one drain episode walks hundreds of
thousands of blocks through ``generate_pad``/``xor_block``/``compute_mac``,
and each call re-runs the BLAKE2b key schedule and converts 64 B blocks
through arbitrary-precision integers one at a time.  The batch forms below
are *provably equivalent* — they produce byte-identical output for every
input (property-tested in ``tests/test_prop_batch.py``) — but amortize the
fixed costs across the whole work list:

* the keyed hash state (key block + domain tag) is absorbed once and
  ``copy()``-ed per item instead of being recomputed;
* the counter-mode XOR runs once over the episode's contiguous buffer as a
  single arbitrary-precision operation instead of per block;
* per-item framing (address/counter fields) is assembled in one pass.

Nothing here changes any value the simulator produces: the scalar
primitives remain the specification, and the differential oracle
(:mod:`repro.core.oracle`) holds the batched engines to it end to end.
"""

import hashlib
import os
from collections.abc import Iterable, Sequence

from repro.common.constants import CACHE_LINE_SIZE, MAC_SIZE
from repro.crypto.arena import frame_buffer, frame_views, xor_bytes
from repro.crypto.primitives import MAC_DOMAIN, PAD_DOMAIN, MacDomain

Frames = Sequence[bytes] | bytes | bytearray | memoryview | None
"""A batch's (address, counter) hash frames: either the list form from
:func:`counter_frames` or the contiguous form from
:func:`repro.crypto.arena.frame_buffer` (24 B per block)."""


def batching_enabled(override: bool | None = None) -> bool:
    """Resolve the batched-execution default.

    ``REPRO_BATCH=0`` forces every engine onto the scalar reference path
    (the differential oracle's other half); anything else — including the
    variable being unset — selects the batched hot path.  An explicit
    ``batched=`` argument on a system or engine always wins.
    """
    if override is not None:
        return override
    return os.environ.get("REPRO_BATCH", "1") != "0"


def counter_frames(addresses: Sequence[int],
                   counters: Sequence[int]) -> list[bytes]:
    """The per-block (address, counter) hash frame, batch-assembled.

    Element ``i`` is ``int_field(addresses[i]) + int_field(counters[i], 16)``
    — the exact bytes both the pad and the block-MAC absorb after their
    domain tags.  Pad generation and MAC computation over the same work list
    share one frame pass.
    """
    if len(addresses) != len(counters):
        raise ValueError("addresses and counters must have equal length")
    return [address.to_bytes(8, "little") + counter.to_bytes(16, "little")
            for address, counter in zip(addresses, counters)]


def _resolve_frames(frames: Frames, addresses: Sequence[int],
                    counters: Sequence[int]) -> Iterable[bytes | memoryview]:
    """Iterate a batch's frames regardless of representation.

    ``None`` assembles them (contiguously, via the arena kernel); a
    ``bytes``/``bytearray``/``memoryview`` buffer is sliced into 24 B
    zero-copy windows; a pre-built list is returned as is.  Every form
    yields the exact bytes :func:`counter_frames` would produce.
    """
    if frames is None:
        frames = frame_buffer(addresses, counters)
    if isinstance(frames, (bytes, bytearray, memoryview)):
        return frame_views(frames, len(addresses))
    return frames


def generate_pads(key: bytes, addresses: Sequence[int],
                  counters: Sequence[int],
                  frames: Frames = None) -> bytes:
    """Counter-mode pads for a batch of blocks, as one contiguous buffer.

    Byte ``64*i .. 64*i+63`` equals ``generate_pad(key, addresses[i],
    counters[i])``.  The keyed state and the pad domain tag are absorbed
    once; each block only pays for its own (address, counter) frame.
    ``frames`` lets a caller that also MACs the same batch reuse one
    frame-assembly pass — either the :func:`counter_frames` list or the
    contiguous :func:`repro.crypto.arena.frame_buffer` form.
    """
    frame_iter = _resolve_frames(frames, addresses, counters)
    base = hashlib.blake2b(key=key, digest_size=CACHE_LINE_SIZE)
    base.update(PAD_DOMAIN)
    fork = base.copy
    pads: list[bytes] = []
    append = pads.append
    for frame in frame_iter:
        h = fork()
        h.update(frame)
        append(h.digest())
    return b"".join(pads)


def xor_buffers(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length buffers in one bulk operation.

    With 64 B inputs this is exactly ``xor_block``; over a whole episode's
    concatenated blocks it replaces N int conversions with one pass (u64
    lanes when the arena is accelerated, one big-int op otherwise).
    """
    return xor_bytes(a, b)


def encrypt_blocks(key: bytes, addresses: Sequence[int],
                   counters: Sequence[int],
                   plaintext: bytes | bytearray | memoryview,
                   frames: Frames = None) -> bytes:
    """Counter-mode encrypt a contiguous buffer of 64 B blocks.

    ``plaintext`` is the concatenation of ``len(addresses)`` blocks; the
    result is the concatenation of ``encrypt_block(key, a, c, block)`` for
    each.  Encryption and decryption are the same operation, as in the
    scalar form.
    """
    if len(plaintext) != CACHE_LINE_SIZE * len(addresses):
        raise ValueError(
            f"plaintext must be {CACHE_LINE_SIZE} B per address, got "
            f"{len(plaintext)} B for {len(addresses)} addresses")
    if not addresses:
        return b""
    return xor_buffers(plaintext,
                       generate_pads(key, addresses, counters, frames))


decrypt_blocks = encrypt_blocks
"""Counter-mode decryption is identical to encryption by construction."""


def compute_macs(key: bytes,
                 items: Iterable[tuple[bytes | memoryview, ...]],
                 domain: MacDomain = MacDomain.NODE) -> list[bytes]:
    """Keyed MACs over a batch of pre-framed inputs.

    ``items[i]`` is the ``parts`` tuple the scalar ``compute_mac`` would
    receive; the result matches it byte for byte under the same ``domain``.
    The keyed state and both domain tags are absorbed once for the batch.
    """
    base = hashlib.blake2b(key=key, digest_size=MAC_SIZE)
    base.update(MAC_DOMAIN)
    base.update(domain.value)
    fork = base.copy
    macs: list[bytes] = []
    append = macs.append
    for parts in items:
        h = fork()
        for part in parts:
            h.update(part)
        append(h.digest())
    return macs


def compute_block_macs(key: bytes, buffer: bytes | bytearray | memoryview,
                       addresses: Sequence[int],
                       counters: Sequence[int], domain: MacDomain,
                       frames: Frames = None) -> list[bytes]:
    """Batched (ciphertext, address, counter) MACs — the CHV/data-MAC shape.

    ``buffer`` is the concatenation of ``len(addresses)`` 64 B blocks;
    element ``i`` equals ``compute_mac(key, block_i, int_field(addr),
    int_field(ctr, 16), domain=domain)``.  ``frames`` reuses a frame
    pass shared with pad generation (list or contiguous form).
    """
    if len(buffer) != CACHE_LINE_SIZE * len(addresses):
        raise ValueError(
            f"buffer must be {CACHE_LINE_SIZE} B per address, got "
            f"{len(buffer)} B for {len(addresses)} addresses")
    frame_iter = _resolve_frames(frames, addresses, counters)
    view = memoryview(buffer)
    base = hashlib.blake2b(key=key, digest_size=MAC_SIZE)
    base.update(MAC_DOMAIN)
    base.update(domain.value)
    fork = base.copy
    macs: list[bytes] = []
    append = macs.append
    offset = 0
    for frame in frame_iter:
        h = fork()
        h.update(view[offset:offset + CACHE_LINE_SIZE])
        h.update(frame)
        append(h.digest())
        offset += CACHE_LINE_SIZE
    return macs


def split_blocks(buffer: bytes | bytearray | memoryview,
                 size: int = CACHE_LINE_SIZE) -> list[bytes]:
    """Cut a contiguous buffer back into ``size``-byte ``bytes`` blocks."""
    if len(buffer) % size:
        raise ValueError(f"buffer length {len(buffer)} not a multiple "
                         f"of {size}")
    if not isinstance(buffer, bytes):
        buffer = bytes(buffer)
    return [buffer[i:i + size] for i in range(0, len(buffer), size)]
