"""Encryption counters: split counter blocks and the Horus drain counter.

Split counters (Section II-B): one 64 B counter block carries a 64-bit major
counter shared by 64 lines plus a 7-bit minor counter per line; a line's
encryption counter is the concatenation ``major || minor``.  Minor overflow
bumps the major and forces re-encryption of the whole 4 KiB page.

The drain counter (Section IV-C): a persistent, strictly monotonic on-chip
counter ``DC`` incremented per flushed block, plus the ephemeral drain counter
``eDC`` counting blocks drained in the current episode.  Together they let
recovery re-derive the counter value used for any CHV position without
persisting per-block counters.
"""

from dataclasses import dataclass, field

from repro.common.constants import (
    CACHE_LINE_SIZE,
    MAJOR_COUNTER_BITS,
    MINOR_COUNTER_BITS,
    MINOR_COUNTERS_PER_BLOCK,
)
from repro.common.errors import CounterOverflowError

_MINOR_LIMIT = 1 << MINOR_COUNTER_BITS
_MAJOR_LIMIT = 1 << MAJOR_COUNTER_BITS

# The chunked wire codec assumes the paper's exact split-counter geometry
# (64 x 7-bit minors -> eight 7-byte groups); any other geometry falls back
# to the generic shift loop.
_CHUNKED_WIRE = MINOR_COUNTER_BITS == 7 and MINOR_COUNTERS_PER_BLOCK == 64 \
    and CACHE_LINE_SIZE == 64


@dataclass
class SplitCounterBlock:
    """A 64 B split-counter block: 1 major + 64 minor counters."""

    major: int = 0
    minors: list[int] = field(
        default_factory=lambda: [0] * MINOR_COUNTERS_PER_BLOCK)

    def __post_init__(self) -> None:
        if not 0 <= self.major < _MAJOR_LIMIT:
            raise CounterOverflowError(f"major counter {self.major} out of range")
        if len(self.minors) != MINOR_COUNTERS_PER_BLOCK:
            raise ValueError(
                f"need exactly {MINOR_COUNTERS_PER_BLOCK} minor counters")
        for minor in self.minors:
            if not 0 <= minor < _MINOR_LIMIT:
                raise CounterOverflowError(f"minor counter {minor} out of range")

    def counter_for(self, slot: int) -> int:
        """Full encryption counter of line ``slot``: ``major || minor``."""
        return (self.major << MINOR_COUNTER_BITS) | self.minors[slot]

    def will_overflow(self, slot: int) -> bool:
        """True when the next :meth:`increment` of ``slot`` wraps the minor."""
        return self.minors[slot] + 1 >= _MINOR_LIMIT

    def increment(self, slot: int) -> bool:
        """Advance the counter of line ``slot`` before a write.

        Returns True when the minor overflowed: the major was incremented,
        all minors reset, and the caller must re-encrypt the whole page
        (the split-counter contract).
        """
        minor = self.minors[slot] + 1
        if minor < _MINOR_LIMIT:
            self.minors[slot] = minor
            return False
        if self.major + 1 >= _MAJOR_LIMIT:
            raise CounterOverflowError("major counter exhausted")
        self.major += 1
        self.minors = [0] * MINOR_COUNTERS_PER_BLOCK
        return True

    # -- 64 B wire format -----------------------------------------------------
    # 8 bytes of major counter followed by 64 x 7-bit minors packed into the
    # remaining 56 bytes (the scheme's arithmetic is exactly why a counter
    # block covers 4 KiB with zero padding).

    def to_bytes(self) -> bytes:
        if _CHUNKED_WIRE:
            # 8 minors = 56 bits = 7 bytes: packing per chunk keeps the
            # intermediate ints machine-sized instead of accumulating one
            # 448-bit integer (this serializes every counter writeback).
            out = bytearray(self.major.to_bytes(8, "little"))
            m = self.minors
            for i in range(0, MINOR_COUNTERS_PER_BLOCK, 8):
                chunk = (m[i] | m[i + 1] << 7 | m[i + 2] << 14
                         | m[i + 3] << 21 | m[i + 4] << 28 | m[i + 5] << 35
                         | m[i + 6] << 42 | m[i + 7] << 49)
                out += chunk.to_bytes(7, "little")
            return bytes(out)
        packed = 0
        for i, minor in enumerate(self.minors):
            packed |= minor << (i * MINOR_COUNTER_BITS)
        return (self.major.to_bytes(8, "little")
                + packed.to_bytes(CACHE_LINE_SIZE - 8, "little"))

    @classmethod
    def from_bytes(cls, data: bytes) -> "SplitCounterBlock":
        if len(data) != CACHE_LINE_SIZE:
            raise ValueError(f"counter block must be {CACHE_LINE_SIZE} B")
        major = int.from_bytes(data[:8], "little")
        if major >= _MAJOR_LIMIT:
            raise CounterOverflowError(
                f"major counter {major} out of range")
        mask = _MINOR_LIMIT - 1
        # Masked parsing cannot produce an out-of-range minor, so skip the
        # dataclass validation pass — this runs once per counter-block fetch.
        block = cls.__new__(cls)
        block.major = major
        if _CHUNKED_WIRE:
            minors: list[int] = []
            extend = minors.extend
            for base in range(8, CACHE_LINE_SIZE, 7):
                chunk = int.from_bytes(data[base:base + 7], "little")
                extend((chunk & 127, (chunk >> 7) & 127, (chunk >> 14) & 127,
                        (chunk >> 21) & 127, (chunk >> 28) & 127,
                        (chunk >> 35) & 127, (chunk >> 42) & 127,
                        chunk >> 49))
            block.minors = minors
        else:
            packed = int.from_bytes(data[8:], "little")
            block.minors = [(packed >> (i * MINOR_COUNTER_BITS)) & mask
                            for i in range(MINOR_COUNTERS_PER_BLOCK)]
        return block

    def copy(self) -> "SplitCounterBlock":
        return SplitCounterBlock(self.major, list(self.minors))

    def is_zero(self) -> bool:
        return self.major == 0 and not any(self.minors)


class DrainCounter:
    """The Horus DC/eDC register pair (both in the persistent TCB).

    ``DC`` never repeats across the lifetime of the system — that property is
    what makes CHV pads unique without any persisted per-block counters.
    """

    def __init__(self, initial: int = 0) -> None:
        if initial < 0:
            raise CounterOverflowError("drain counter cannot be negative")
        self._dc = initial
        self._edc = 0

    @property
    def value(self) -> int:
        """Current DC (the next flush will consume this value)."""
        return self._dc

    @property
    def ephemeral(self) -> int:
        """Blocks drained in the current episode (eDC)."""
        return self._edc

    def begin_episode(self) -> None:
        """Start a new drain episode (eDC starts counting from zero)."""
        self._edc = 0

    def next(self) -> int:
        """Consume and return the counter value for the next flushed block."""
        if self._dc + 1 >= 1 << 64:
            raise CounterOverflowError("drain counter exhausted")
        value = self._dc
        self._dc += 1
        self._edc += 1
        return value

    def take(self, count: int) -> int:
        """Consume ``count`` consecutive counter values; return the first.

        Equivalent to ``count`` calls of :meth:`next` (positions get values
        ``start .. start+count-1``) — the batched drain path reserves a whole
        episode's counters in one register update, exactly as hardware
        would add a constant to DC.
        """
        if count < 0:
            raise CounterOverflowError("cannot take a negative count")
        if self._dc + count >= 1 << 64:
            raise CounterOverflowError("drain counter exhausted")
        start = self._dc
        self._dc += count
        self._edc += count
        return start

    def value_at(self, position: int) -> int:
        """DC value that was used for episode position ``position``.

        ``position`` counts from the start of the most recent episode; the
        paper derives this as ``DC - eDC + position`` from the persistent
        registers, which is exactly what recovery needs.
        """
        if not 0 <= position < self._edc:
            raise CounterOverflowError(
                f"position {position} outside episode of {self._edc} blocks")
        return self._dc - self._edc + position

    def clear_ephemeral(self) -> None:
        """Called after a successful recovery (the paper clears eDC)."""
        self._edc = 0
