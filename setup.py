"""Setuptools shim.

The project is configured in pyproject.toml; this file exists so that
`pip install -e .` also works on minimal/offline environments whose pip
cannot build PEP 660 editable wheels (no `wheel` package available).
"""

from setuptools import setup

setup()
