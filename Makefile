# Convenience targets for the Horus reproduction.

PYTHON ?= python

.PHONY: test bench bench-full experiments experiments-full examples lint clean

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_BENCH_SCALE=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro.experiments.runner

experiments-full:
	$(PYTHON) -m repro.experiments.runner --scale 1 --output results

examples:
	for script in examples/*.py; do \
		echo "== $$script"; $(PYTHON) $$script || exit 1; \
	done

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis .benchmarks
