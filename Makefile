# Convenience targets for the Horus reproduction.

PYTHON ?= python

.PHONY: test bench bench-full experiments experiments-full examples lint lint-deep typecheck clean

test:
	$(PYTHON) -m pytest tests/

# reprolint is stdlib-only and always runs; ruff/mypy are optional dev tools
# (CI installs them) and are skipped with a notice when absent locally.
lint:
	PYTHONPATH=src $(PYTHON) -m repro.lint src tests
	@if $(PYTHON) -c "import ruff" 2>/dev/null || command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed; skipping (CI runs it)"; \
	fi

# The cross-module dataflow rules (F1-F5) on top of the fast rules; still
# stdlib-only, just slower (whole-project call graph + taint fixed point).
lint-deep:
	PYTHONPATH=src $(PYTHON) -m repro.lint --deep src tests

typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "mypy not installed; skipping (CI runs it)"; \
	fi

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_BENCH_SCALE=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro.experiments.runner

experiments-full:
	$(PYTHON) -m repro.experiments.runner --scale 1 --output results

examples:
	for script in examples/*.py; do \
		echo "== $$script"; $(PYTHON) $$script || exit 1; \
	done

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis .benchmarks
