"""Every attack class of the threat model, demonstrated and detected.

The paper's Section IV-A threat model grants the attacker full control of
off-chip memory: tampering, spoofing, replay, and splicing — at run time
against the main secure-memory stack, and between crash and recovery against
the CHV.  This example mounts each attack and shows the integrity machinery
rejecting it.

Run:  python examples/attack_detection.py
"""

from repro import IntegrityError, SecureEpdSystem, SystemConfig
from repro.attacks.adversary import Adversary


def expect_detection(name: str, action) -> None:
    try:
        action()
    except IntegrityError as error:
        print(f"  [detected] {name}: {error}")
    else:
        raise AssertionError(f"{name} was NOT detected")


def _fresh_controller():
    """A cold secure controller with two protected blocks on NVM."""
    system = SecureEpdSystem(SystemConfig.scaled(256), scheme="base-eu")
    controller = system.controller
    controller.write(0, b"alpha".ljust(64, b"\0"))
    controller.write(4096, b"beta".ljust(64, b"\0"))
    controller.flush_metadata()
    controller.drop_volatile_state()
    return controller, Adversary(system.nvm)


def runtime_attacks() -> None:
    print("Run-time attacks against the secure-memory stack (Base-EU):")

    controller, adversary = _fresh_controller()
    adversary.tamper(4096)
    expect_detection("data tampering", lambda: controller.read(4096))

    controller, adversary = _fresh_controller()
    adversary.spoof(0, b"attacker-chosen".ljust(64, b"\0"))
    expect_detection("data spoofing", lambda: controller.read(0))

    controller, adversary = _fresh_controller()
    adversary.splice(0, 4096)
    expect_detection("data splicing", lambda: controller.read(0))

    # Replay: capture data v1, let the system advance to v2, put v1 back.
    controller, adversary = _fresh_controller()
    stale_data = adversary.snapshot(0)
    stale_mac_block = adversary.snapshot(
        controller.layout.mac_block_address(0))
    controller.write(0, b"alpha-v2".ljust(64, b"\0"))
    controller.flush_metadata()
    controller.drop_volatile_state()
    adversary.replay(0, stale_data)
    adversary.replay(controller.layout.mac_block_address(0), stale_mac_block)
    expect_detection("data+MAC replay", lambda: controller.read(0))

    # Counter replay: roll the encryption counter block back.
    controller, adversary = _fresh_controller()
    stale_counter = adversary.snapshot(
        controller.layout.counter_block_address(0))
    controller.write(0, b"alpha-v2".ljust(64, b"\0"))
    controller.flush_metadata()
    controller.drop_volatile_state()
    adversary.replay(controller.layout.counter_block_address(0),
                     stale_counter)
    expect_detection("counter replay", lambda: controller.read(0))


def chv_attacks() -> None:
    print("\nCrash-window attacks against the Horus CHV:")
    scenarios = [
        ("CHV data tampering",
         lambda chv, adv: adv.tamper(chv.data_address(3))),
        ("CHV address-block tampering (relocation)",
         lambda chv, adv: adv.tamper(chv.address_block_address(0))),
        ("CHV MAC-block tampering",
         lambda chv, adv: adv.tamper(chv.mac_block_address(0))),
        ("CHV splicing (swap two vaulted blocks)",
         lambda chv, adv: adv.splice(chv.data_address(0),
                                     chv.data_address(1))),
    ]
    for name, mutate in scenarios:
        system = SecureEpdSystem(SystemConfig.scaled(256),
                                 scheme="horus-slm")
        system.fill_worst_case(seed=1)
        system.crash(seed=2)
        chv = system.drain_engine._chv
        mutate(chv, Adversary(system.nvm))
        expect_detection(name, system.recover)

    # Cross-episode replay: vault content from episode 1 injected into
    # episode 2 fails because the drain counter never repeats.
    system = SecureEpdSystem(SystemConfig.scaled(256), scheme="horus-slm")
    system.fill_worst_case(seed=1)
    system.crash(seed=2)
    chv = system.drain_engine._chv
    adversary = Adversary(system.nvm)
    stale = [adversary.snapshot(chv.data_address(i)) for i in range(8)]
    system.recover()
    system.fill_worst_case(seed=3)
    system.crash(seed=4)
    for i, content in enumerate(stale):
        adversary.replay(chv.data_address(i), content)
    expect_detection("CHV cross-episode replay", system.recover)


def main() -> None:
    runtime_attacks()
    chv_attacks()
    print("\nAll attack classes of the threat model were detected.")


if __name__ == "__main__":
    main()
