"""Quickstart: drain a worst-case cache hierarchy under every scheme.

Builds the five systems the paper evaluates (non-secure EPD, the two secure
baselines, and both Horus variants) at 1/32 of the Table I configuration,
fills the hierarchy with the worst-case sparse dirty content, crashes each,
and prints the drain cost side by side — the headline comparison of the
paper in one screen.

Run:  python examples/quickstart.py [scale]
"""

import sys

from repro import SCHEMES, SecureEpdSystem, SystemConfig
from repro.stats.report import format_table


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    config = SystemConfig.scaled(scale)
    print(f"Configuration: 1/{scale} of Table I "
          f"({config.total_cache_lines:,} flushed blocks, "
          f"LLC {config.llc.size // 1024} KiB)\n")

    reports = {}
    for scheme in SCHEMES:
        system = SecureEpdSystem(config, scheme=scheme)
        system.fill_worst_case(seed=1)
        reports[scheme] = system.crash(seed=2)
        if scheme.startswith("horus"):
            recovery = system.recover()
            assert recovery.blocks_restored >= reports[scheme].flushed_blocks

    nosec = reports["nosec"]
    rows = []
    for scheme in SCHEMES:
        report = reports[scheme]
        rows.append([
            scheme,
            report.total_memory_requests,
            report.total_macs,
            report.milliseconds,
            report.seconds / nosec.seconds,
        ])
    print(format_table(
        ["scheme", "memory requests", "MAC calcs", "drain ms", "x nosec"],
        rows))

    lu = reports["base-lu"]
    slm = reports["horus-slm"]
    print(f"\nHorus-SLM vs Base-LU: "
          f"{lu.total_memory_requests / slm.total_memory_requests:.1f}x "
          f"fewer memory requests, "
          f"{lu.total_macs / slm.total_macs:.1f}x fewer MACs, "
          f"{lu.seconds / slm.seconds:.1f}x faster drain "
          f"(paper: 8x, 7.8x, 5x)")


if __name__ == "__main__":
    main()
