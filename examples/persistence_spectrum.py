"""The persistence-domain spectrum: ADR vs BBB vs EPD on a YCSB workload.

Reproduces the argument of the paper's Sections I-II as a running system:
where you place the persistence boundary decides where the secure-memory tax
is paid.  ADR taxes every persist; BBB taxes buffer evictions; EPD taxes
nothing at run time but must drain the whole hierarchy on an outage — which
is exactly the budget Horus shrinks.

Run:  python examples/persistence_spectrum.py [ycsb_workload] [num_ops]
"""

import sys

from repro import SecureEpdSystem, SystemConfig
from repro.epd.adr import AdrSecureSystem
from repro.epd.bbb import BbbSecureSystem
from repro.epd.dolos import DolosAdrSystem
from repro.stats.report import format_table
from repro.workloads.trace import OpKind
from repro.workloads.ycsb import ycsb_trace


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "a"
    num_ops = int(sys.argv[2]) if len(sys.argv) > 2 else 5000
    config = SystemConfig.scaled(64)
    trace = ycsb_trace(workload, num_ops, footprint_blocks=512, seed=3)
    writes = sum(1 for op in trace if op.kind is OpKind.WRITE)
    print(f"YCSB-{workload.upper()}: {num_ops} ops, {writes} writes, "
          f"512-block footprint\n")

    adr = AdrSecureSystem(config)
    for op in trace:
        if op.kind is OpKind.WRITE:
            adr.write(op.address, op.data)
            adr.persist(op.address)
        else:
            adr.read(op.address)

    dolos = DolosAdrSystem(config)
    for op in trace:
        if op.kind is OpKind.WRITE:
            dolos.write(op.address, op.data)
            dolos.persist(op.address)
        else:
            dolos.read(op.address)

    bbb = BbbSecureSystem(config)
    for op in trace:
        if op.kind is OpKind.WRITE:
            bbb.write(op.address, op.data)
        else:
            bbb.read(op.address)

    epd = SecureEpdSystem(config, scheme="horus-dlm")
    for op in trace:
        if op.kind is OpKind.WRITE:
            epd.write(op.address, op.data)
        else:
            epd.read(op.address)

    epd_runtime_requests = epd.stats.total_memory_requests
    drain = epd.crash(seed=9)
    epd.recover()
    bbb_runtime_requests = bbb.stats.total_memory_requests
    bbb_drained = bbb.crash()

    rows = [
        ["ADR", "explicit flush+fence", adr.stats.total_memory_requests,
         f"{adr.persist_critical_cycles() / max(1, adr.persists):.0f} "
         "cycles/persist",
         "WPQ (~0)"],
        ["ADR + Dolos", "explicit, MSU-staged",
         dolos.stats.total_memory_requests,
         f"{dolos.persist_critical_cycles() / max(1, dolos.persists):.0f} "
         "cycles/persist",
         f"{dolos.staged_entries} MSU entries"],
        ["BBB", "implicit via backed buffer",
         bbb_runtime_requests,
         f"{bbb.writethrough_fraction:.0%} of writes pay write-through",
         f"{bbb_drained} buffer lines"],
        ["EPD (Horus-DLM)", "implicit via backed caches",
         epd_runtime_requests, "none",
         f"{drain.total_memory_requests:,} requests "
         f"({drain.milliseconds:.2f} ms)"],
    ]
    print(format_table(
        ["system", "persistence model", "runtime mem requests",
         "runtime security tax", "crash budget"], rows))

    print("\nReading the table: moving the persistence boundary outward "
          "(ADR -> BBB -> EPD) removes run-time cost and grows the crash "
          "budget; Horus makes the EPD end of the spectrum affordable.")


if __name__ == "__main__":
    main()
