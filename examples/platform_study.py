"""A platform architect's worksheet: parallel memory, wear, and hold-up.

Uses the closed-form Horus cost model, the banked-memory queueing model, and
the wear tracker to answer the questions a server platform team would ask
before enabling secure memory on an eADR part:

1. How much hold-up time must the PSU guarantee, per scheme?
2. How much of that does channel/bank parallelism realistically recover?
3. Where does the write endurance go over the machine's lifetime of drains?

Run:  python examples/platform_study.py [scale]
"""

import sys

from repro import SecureEpdSystem, SystemConfig
from repro.core.analytic import horus_drain_seconds
from repro.epd.power import EADR_MIN_HOLDUP_MS
from repro.mem.banking import BankGeometry, replay_makespan
from repro.mem.wear import WearTracker
from repro.stats.chart import render_bars
from repro.stats.report import format_table


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    config = SystemConfig.scaled(scale)
    print(f"Configuration: 1/{scale} of Table I, "
          f"{config.total_cache_lines:,} worst-case dirty lines\n")

    # 1. Hold-up per scheme, serialized (the conservative budget) ---------
    print("=== 1. Worst-case hold-up budget (serialized memory) ===\n")
    traces = {}
    labels, values = [], []
    for scheme in ("nosec", "base-lu", "horus-slm", "horus-dlm"):
        system = SecureEpdSystem(config, scheme=scheme)
        system.nvm.trace = []
        system.nvm.wear = WearTracker(system.layout)
        system.fill_worst_case(seed=1)
        report = system.crash(seed=2)
        traces[scheme] = (system, report)
        labels.append(scheme)
        values.append(report.milliseconds)
    print(render_bars(labels, values))
    print(f"\n(eADR requires a >= {EADR_MIN_HOLDUP_MS:.0f} ms hold-up PSU; "
          "the full-scale paper config multiplies these by "
          f"{64 // 1 * scale // 64}x)")

    # Closed form sanity line the architect can put in a spreadsheet:
    analytic = horus_drain_seconds(config, double_level_mac=True) * 1e3
    print(f"closed-form Horus-DLM worst case: {analytic:.3f} ms "
          f"(simulated {traces['horus-dlm'][1].milliseconds:.3f} ms)")

    # 2. What memory parallelism recovers ---------------------------------
    print("\n=== 2. Drain makespan vs bank parallelism (optimistic) ===\n")
    rows = []
    for scheme in ("base-lu", "horus-dlm"):
        system, report = traces[scheme]
        for geometry in (BankGeometry(1, 1), BankGeometry(1, 8),
                         BankGeometry(4, 8)):
            result = replay_makespan(system.nvm.trace, config, geometry)
            rows.append([scheme, geometry.total_banks,
                         result.makespan_ns / 1e6])
    print(format_table(["scheme", "banks", "makespan ms"], rows))

    # 3. Endurance --------------------------------------------------------
    print("\n=== 3. Write endurance spent by one worst-case drain ===\n")
    rows = []
    for scheme in ("base-lu", "horus-dlm"):
        system, _ = traces[scheme]
        for wear in system.nvm.wear.region_wear():
            if wear.total_writes:
                rows.append([scheme, wear.region, wear.total_writes,
                             wear.max_writes_per_block])
    print(format_table(["scheme", "region", "writes", "max/block"], rows))
    print("\nBaseline drains burn endurance in the tree region "
          "(in place, repeatedly); Horus spends one write per CHV block "
          "per episode in a region reserved for exactly that.")


if __name__ == "__main__":
    main()
