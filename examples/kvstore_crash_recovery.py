"""A persistent key-value store on a secure EPD memory system.

The paper's introduction motivates EPD with key-value stores: persistence is
reached the moment a store hits the cache, with no flush/fence pair.  This
example builds a small KV store whose backing "memory" is a
:class:`~repro.core.system.SecureEpdSystem`, runs a workload, pulls the plug
mid-run, recovers, and proves every committed write survived — then shows
that a tampered vault refuses to recover.

Run:  python examples/kvstore_crash_recovery.py
"""

import hashlib

from repro import IntegrityError, SecureEpdSystem, SystemConfig
from repro.attacks.adversary import Adversary


class PersistentKvStore:
    """An open-addressed (linear-probing) KV store, one 64 B line per slot.

    Each record stores the key and the value, so hash collisions probe to
    the next slot instead of silently overwriting — all state lives in the
    persistent memory system, nothing in volatile Python state.

    Record layout: key length (1) | key (<= 15) | value length (1) |
    value (<= 31) | blake2b-16 digest of key+value.
    """

    MAX_KEY, MAX_VALUE = 15, 31

    def __init__(self, system: SecureEpdSystem, capacity: int = 1024):
        self._system = system
        self._capacity = capacity

    def _home_slot(self, key: bytes) -> int:
        digest = hashlib.blake2b(key, digest_size=8).digest()
        return int.from_bytes(digest, "little") % self._capacity

    def _probe(self, key: bytes):
        """Yield (address, record) from the home slot onwards."""
        slot = self._home_slot(key)
        for _ in range(self._capacity):
            address = slot * 64
            yield address, self._system.read(address)
            slot = (slot + 1) % self._capacity

    @staticmethod
    def _pack(key: bytes, value: bytes) -> bytes:
        digest = hashlib.blake2b(key + value, digest_size=16).digest()
        record = (bytes([len(key)]) + key.ljust(15, b"\0")
                  + bytes([len(value)]) + value.ljust(31, b"\0") + digest)
        return record

    @staticmethod
    def _unpack(record: bytes) -> tuple[bytes, bytes] | None:
        key_len = record[0]
        if key_len == 0:
            return None
        key = record[1:1 + key_len]
        value_len = record[16]
        value = record[17:17 + value_len]
        if hashlib.blake2b(key + value, digest_size=16).digest() \
                != record[48:64]:
            raise RuntimeError("application-level corruption (never expected)")
        return key, value

    def put(self, key: str, value: bytes) -> None:
        raw_key = key.encode()
        if len(raw_key) > self.MAX_KEY or len(value) > self.MAX_VALUE:
            raise ValueError("key or value too large for one slot")
        for address, record in self._probe(raw_key):
            existing = self._unpack(record)
            if existing is None or existing[0] == raw_key:
                self._system.write(address, self._pack(raw_key, value))
                return
        raise RuntimeError("store is full")

    def get(self, key: str) -> bytes | None:
        raw_key = key.encode()
        for _, record in self._probe(raw_key):
            existing = self._unpack(record)
            if existing is None:
                return None
            if existing[0] == raw_key:
                return existing[1]
        return None


def main() -> None:
    system = SecureEpdSystem(SystemConfig.scaled(256), scheme="horus-dlm")
    store = PersistentKvStore(system)

    committed = {}
    for i in range(200):
        key, value = f"user:{i}", f"record-{i:04d}".encode()
        store.put(key, value)
        committed[key] = value
    print(f"committed {len(committed)} records "
          "(no flush/fence instructions issued — EPD persistence)")

    report = system.crash(seed=7)
    print(f"power outage: drained {report.flushed_blocks} dirty lines into "
          f"the CHV in {report.milliseconds:.3f} ms "
          f"({report.total_memory_requests} memory requests)")

    recovery = system.recover()
    print(f"power restored: verified and refilled "
          f"{recovery.blocks_restored} blocks in "
          f"{recovery.milliseconds:.3f} ms")

    intact = sum(store.get(k) == v for k, v in committed.items())
    print(f"verified: {intact}/{len(committed)} records intact after crash")
    assert intact == len(committed)

    # Crash again, but this time an attacker rewrites part of the vault
    # while the machine is off.  Recovery must refuse.
    for i in range(10):
        store.put(f"user:{i}", b"post-recovery-update")
    system.crash(seed=8)
    chv = system.drain_engine._chv
    Adversary(system.nvm).tamper(chv.data_address(0))
    try:
        system.recover()
    except IntegrityError as error:
        print(f"tampered vault rejected as designed: {error}")
    else:
        raise AssertionError("tampering must be detected")


if __name__ == "__main__":
    main()
