"""Hold-up budget and battery sizing for a secure EPD server (Tables II/III).

Walks the Section V-G pipeline end to end: worst-case drain -> serialized
drain time -> energy breakdown -> backup-source volume, for every scheme and
a sweep of LLC sizes.  This is the analysis a platform architect would run to
decide whether secure memory fits their eADR power budget.

Run:  python examples/battery_sizing.py [scale]
"""

import sys

from repro import SecureEpdSystem, SystemConfig
from repro.common.units import mib
from repro.energy.battery import estimate_battery
from repro.energy.model import EnergyModel
from repro.epd.power import holdup_budget
from repro.stats.report import format_table

SCHEMES = ("nosec", "base-lu", "base-eu", "horus-slm", "horus-dlm")


def drain(config, scheme):
    system = SecureEpdSystem(config, scheme=scheme)
    system.fill_worst_case(seed=1)
    return system.crash(seed=2)


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    config = SystemConfig.scaled(scale)
    model = EnergyModel()

    print(f"=== Hold-up, energy, and battery per scheme "
          f"(1/{scale} scale) ===\n")
    reports = {scheme: drain(config, scheme) for scheme in SCHEMES}
    nosec = reports["nosec"]
    rows = []
    for scheme in SCHEMES:
        report = reports[scheme]
        budget = holdup_budget(report, nosec)
        energy = model.breakdown(report)
        battery = estimate_battery(energy)
        rows.append([scheme, budget.holdup_ms, budget.relative_to_nosec,
                     energy.total_j, battery.supercap_cm3,
                     battery.li_thin_cm3])
    print(format_table(
        ["scheme", "hold-up ms", "x nosec", "energy J",
         "SuperCap cm^3", "Li-thin cm^3"], rows))

    print("\n=== Horus-DLM hold-up vs LLC size ===\n")
    rows = []
    for llc_mb in (8, 16, 32):
        llc_config = SystemConfig.scaled(scale, llc_size=mib(llc_mb))
        report = drain(llc_config, "horus-dlm")
        baseline = drain(llc_config, "base-lu")
        rows.append([f"{llc_mb}MB (pre-scale)", report.milliseconds,
                     baseline.milliseconds,
                     baseline.seconds / report.seconds])
    print(format_table(
        ["LLC", "horus-dlm ms", "base-lu ms", "reduction"], rows))

    print("\nInterpretation: the backup source must be sized for the "
          "worst-case drain; Horus cuts that budget by the last column.")


if __name__ == "__main__":
    main()
