"""Failure-atomic banking on a secure EPD memory system.

The paper's programmability claim, end to end: account balances live in a
persistent heap, transfers run as undo-logged transactions, and *no flush or
fence instruction exists anywhere in this file* — cache residency is
durability (EPD), the memory is encrypted and integrity-protected (the
secure controller), and a crash in the middle of a transfer rolls back
cleanly after Horus recovery.

Run:  python examples/persistent_bank.py
"""

from repro import SecureEpdSystem, SystemConfig
from repro.pmlib import PersistentHeap, Transaction, TransactionManager

LOG_BASE = 1 << 20


class Bank:
    """Accounts are heap blocks holding an 8-byte balance."""

    def __init__(self, system: SecureEpdSystem, heap: PersistentHeap):
        self._system = system
        self._heap = heap
        self.accounts: dict[str, int] = {}

    def open_account(self, name: str, balance: int) -> None:
        address = self._heap.alloc()
        self.accounts[name] = address
        self._system.write(address, balance.to_bytes(8, "little")
                           .ljust(64, b"\0"))

    def balance(self, name: str) -> int:
        return int.from_bytes(self._system.read(self.accounts[name])[:8],
                              "little")

    def _write_balance(self, txn: Transaction, name: str,
                       value: int) -> None:
        txn.write(self.accounts[name],
                  value.to_bytes(8, "little").ljust(64, b"\0"))

    def transfer(self, tx: TransactionManager, src: str, dst: str,
                 amount: int) -> None:
        with tx.transaction() as txn:
            src_balance = self.balance(src)
            if src_balance < amount:
                raise ValueError("insufficient funds")
            self._write_balance(txn, src, src_balance - amount)
            self._write_balance(txn, dst, self.balance(dst) + amount)


def main() -> None:
    system = SecureEpdSystem(SystemConfig.scaled(256), scheme="horus-dlm")
    heap = PersistentHeap(system, base=0, blocks=256)
    tx = TransactionManager(system, LOG_BASE)
    bank = Bank(system, heap)

    bank.open_account("alice", 100)
    bank.open_account("bob", 50)
    bank.transfer(tx, "alice", "bob", 30)
    print(f"after transfer: alice={bank.balance('alice')} "
          f"bob={bank.balance('bob')}")
    assert (bank.balance("alice"), bank.balance("bob")) == (70, 80)

    # --- crash in the middle of a transfer -------------------------------
    tx.log.begin()
    txn = Transaction(system, tx.log)
    balance = bank.balance("alice")
    txn.write(bank.accounts["alice"],
              (balance - 25).to_bytes(8, "little").ljust(64, b"\0"))
    print("debited alice... and the power fails before bob is credited")

    drain = system.crash(seed=7)
    print(f"drained {drain.flushed_blocks} dirty lines "
          f"({drain.milliseconds:.3f} ms)")
    system.recover()
    rolled_back = tx.recover()
    print(f"recovery rolled back {rolled_back} undo entries")

    print(f"after recovery: alice={bank.balance('alice')} "
          f"bob={bank.balance('bob')}")
    assert (bank.balance("alice"), bank.balance("bob")) == (70, 80)

    # Money is conserved; a committed transfer after recovery still works.
    bank.transfer(tx, "bob", "alice", 10)
    assert (bank.balance("alice"), bank.balance("bob")) == (80, 70)
    print("post-recovery transfer committed; invariants hold.")


if __name__ == "__main__":
    main()
