"""Benchmark: regenerate Figure 6 (motivation).

Paper series: memory requests to flush the cache hierarchy, by type, for a
non-secure EPD flush vs baseline secure flushes — 10.3x (lazy) / 9.5x
(eager) more accesses than non-secure.  At full scale this reproduction
measures 10.13x / 8.17x.
"""

from benchmarks.conftest import report_result
from repro.experiments.fig06_motivation import run as run_fig6


def test_fig06_motivation(benchmark, suite):
    result = benchmark.pedantic(run_fig6, args=(suite,),
                                rounds=1, iterations=1)
    report_result(benchmark, result)
