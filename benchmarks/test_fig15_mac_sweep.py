"""Benchmark: regenerate Figure 15 (MAC calculations vs LLC size).

Paper series: across 8/16/32 MB LLCs, Horus computes >= 5.8x fewer MACs
than Base-LU, normalized per LLC size.
"""

from benchmarks.conftest import report_result
from repro.experiments.fig14_15_llc_sweep import run_fig15


def test_fig15_mac_sweep(benchmark, sweep_suite):
    result = benchmark.pedantic(run_fig15, args=(sweep_suite,),
                                rounds=1, iterations=1)
    report_result(benchmark, result)
