"""Benchmark: regenerate Figure 12 (memory-write breakdown per scheme).

Paper series: baseline writes dominated by integrity-tree/counter evictions;
Horus-SLM writes 8x more CHV MAC blocks than Horus-DLM; the end-of-drain
metadata-cache flush is negligible everywhere.
"""

from benchmarks.conftest import report_result
from repro.experiments.fig12_write_breakdown import run as run_fig12


def test_fig12_write_breakdown(benchmark, suite):
    result = benchmark.pedantic(run_fig12, args=(suite,),
                                rounds=1, iterations=1)
    report_result(benchmark, result)
