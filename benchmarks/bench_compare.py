"""Perf-regression gate: compare a BENCH_pr.json against the baseline.

Fails (exit 1) when any metric regressed by more than the threshold
(default 15%) relative to the committed baseline:

* ``time`` metrics compare *normalized* wall time (seconds divided by the
  calibration workload, see :mod:`benchmarks.bench_runner`) — current may
  not exceed baseline by more than the threshold;
* ``ratio`` metrics (batched-vs-scalar speedups) — current may not fall
  below baseline by more than the threshold.

Usage::

    PYTHONPATH=src python benchmarks/bench_compare.py \
        benchmarks/BENCH_baseline.json BENCH_pr.json [--threshold 0.15]

Metrics present in only one file are reported but never fail the gate, so
adding a new benchmark does not require a lockstep baseline update.
"""

import argparse
import json
import sys


def _load(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def compare(baseline: dict, current: dict,
            threshold: float) -> tuple[list[str], list[str]]:
    """Return (report lines, failure lines)."""
    lines: list[str] = []
    failures: list[str] = []
    base_metrics = baseline.get("metrics", {})
    cur_metrics = current.get("metrics", {})

    for name in sorted(set(base_metrics) | set(cur_metrics)):
        base = base_metrics.get(name)
        cur = cur_metrics.get(name)
        if base is None or cur is None:
            missing = "baseline" if base is None else "current"
            lines.append(f"SKIP {name}: missing from the {missing} run")
            continue
        if base["kind"] != cur["kind"]:
            # A metric that silently changed kind would be compared on the
            # wrong field (and in the wrong direction); that is a gate
            # failure, not something to paper over.
            lines.append(f"FAIL {name}: kind changed "
                         f"{base['kind']!r} -> {cur['kind']!r}")
            failures.append(f"{name} changed kind from {base['kind']!r} to "
                            f"{cur['kind']!r}; regenerate the baseline")
            continue
        if cur["kind"] == "ratio":
            base_v, cur_v = base["value"], cur["value"]
            if base_v == 0:
                lines.append(f"FAIL {name}: baseline ratio is 0x "
                             f"(current {cur_v:.2f}x)")
                failures.append(
                    f"{name} baseline ratio is 0; the baseline is "
                    f"malformed — regenerate it")
                continue
            change = (cur_v - base_v) / base_v
            verdict = "FAIL" if change < -threshold else "ok"
            lines.append(f"{verdict:4} {name}: {base_v:.2f}x -> {cur_v:.2f}x "
                         f"({change:+.1%})")
            if verdict == "FAIL":
                failures.append(
                    f"{name} speedup dropped {-change:.1%} "
                    f"(limit {threshold:.0%})")
        else:
            base_v, cur_v = base["normalized"], cur["normalized"]
            if base_v == 0:
                lines.append(f"FAIL {name}: baseline normalized time is 0 "
                             f"(current {cur_v:.3f})")
                failures.append(
                    f"{name} baseline normalized time is 0; the baseline "
                    f"is malformed — regenerate it")
                continue
            change = (cur_v - base_v) / base_v
            verdict = "FAIL" if change > threshold else "ok"
            lines.append(f"{verdict:4} {name}: normalized {base_v:.3f} -> "
                         f"{cur_v:.3f} ({change:+.1%})")
            if verdict == "FAIL":
                failures.append(
                    f"{name} slowed down {change:.1%} "
                    f"(limit {threshold:.0%})")
    return lines, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail when benchmarks regressed past the threshold.")
    parser.add_argument("baseline", help="committed BENCH_baseline.json")
    parser.add_argument("current", help="freshly produced BENCH_pr.json")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed fractional regression (default 0.15)")
    args = parser.parse_args(argv)

    baseline = _load(args.baseline)
    current = _load(args.current)
    lines, failures = compare(baseline, current, args.threshold)

    for line in lines:
        print(line)
    if failures:
        print(f"\nREGRESSION: {len(failures)} metric(s) past the "
              f"{args.threshold:.0%} gate:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nall metrics within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
