"""Honest wall-clock benchmark of epoch-batched trace replay.

The acceptance gate for the batched runtime engine: replaying a 100k-op
YCSB-A trace (working set twice the LLC) on horus-dlm at 1/128 scale must
be at least 2.75x faster epoch-batched than scalar — while producing a
byte-identical NVM image and identical SimStats counters, cache hit rates,
and access mix.

The floor is the noise-safe edge of the measured speedup (2.9x with the
struct-of-arrays cache model driving the replay core; interleaved min/min
wobbles by roughly 5% between runs on a loaded machine).  Raise it when
the measured ratio moves, never ahead of it.  The remaining wall splits
roughly 0.13s cache / 0.10s mem / 0.03s other per 100k ops on the
reference machine: the mem share is semantic crypto (BLAKE2b digests and
the arena pad/MAC kernels) and the cache share is ~850k intrinsic C-dict
operations, which bounds the pure-Python ratio near 3x — the original 10x
target needs a compiled cache core, not more Python.

Scalar and batched rounds are interleaved (each round times both back to
back) and compared min/min, so transient background load lands on both
sides and cancels out of the ratio.

``REPRO_BENCH_GATE=0`` downgrades the speedup assertion to a report-only
print — the CI pure-python job uses it to publish the ``REPRO_ARENA=0``
ratio without gating on it (the fallback trades the numpy decomposition
for per-op divmods and is expected to sit below the accelerated floor).
Byte-identity is asserted unconditionally; the knob only relaxes speed.
"""

import os
import time

from repro.common.config import SystemConfig
from repro.core.system import SecureEpdSystem
from repro.workloads.replay import replay
from benchmarks.bench_runner import REPLAY_ROUNDS, replay_trace

CONFIG = SystemConfig.scaled(128)
SCHEME = "horus-dlm"
REPLAY_SPEEDUP_FLOOR = 2.75


def _observe(system: SecureEpdSystem) -> dict:
    return {
        "image": system.nvm.backend.image(),
        "stats": system.stats.snapshot(),
        "access": dict(system.hierarchy.access_counts),
        "levels": [(level.name, level.hits, level.misses)
                   for level in system.hierarchy.levels],
        "lost": list(system.nvm.lost_writes),
    }


def test_batched_replay_speedup_and_byte_identity():
    trace = replay_trace(CONFIG)
    walls = {False: float("inf"), True: float("inf")}
    observed = {}
    for _ in range(REPLAY_ROUNDS):
        for batched in (False, True):
            system = SecureEpdSystem(CONFIG, scheme=SCHEME,
                                     batched=batched)
            start = time.perf_counter()
            expected = replay(system, trace, batched=batched)
            walls[batched] = min(walls[batched],
                                 time.perf_counter() - start)
            observed[batched] = (len(expected), _observe(system))

    for field in observed[False][1]:
        assert observed[True][1][field] == observed[False][1][field], (
            f"batched replay diverged from scalar on {field!r}")
    assert observed[True][0] == observed[False][0]

    speedup = walls[False] / walls[True]
    message = (
        f"{SCHEME}: batched replay {speedup:.2f}x faster than scalar "
        f"(scalar {walls[False] * 1e3:.0f} ms, "
        f"batched {walls[True] * 1e3:.0f} ms)")
    if os.environ.get("REPRO_BENCH_GATE", "1") == "0":
        print(f"\n[report-only] {message}")
        return
    assert speedup >= REPLAY_SPEEDUP_FLOOR, message
