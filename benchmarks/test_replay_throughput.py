"""Honest wall-clock benchmark of epoch-batched trace replay.

The acceptance gate for the batched runtime engine: replaying a 100k-op
YCSB-A trace (working set twice the LLC) on horus-dlm at 1/128 scale must
be at least 2.5x faster epoch-batched than scalar — while producing a
byte-identical NVM image and identical SimStats counters, cache hit rates,
and access mix.

The floor is the noise-safe edge of the measured speedup (3.1x with the
arena-backed crypto/memory substrate; interleaved min/min wobbles by
roughly 15% between runs on a loaded machine).  Raise it when the measured
ratio moves, never ahead of it.

Scalar and batched rounds are interleaved (each round times both back to
back) and compared min/min, so transient background load lands on both
sides and cancels out of the ratio.
"""

import time

from repro.common.config import SystemConfig
from repro.core.system import SecureEpdSystem
from repro.workloads.replay import replay
from benchmarks.bench_runner import REPLAY_ROUNDS, replay_trace

CONFIG = SystemConfig.scaled(128)
SCHEME = "horus-dlm"
REPLAY_SPEEDUP_FLOOR = 2.5


def _observe(system: SecureEpdSystem) -> dict:
    return {
        "image": system.nvm.backend.image(),
        "stats": system.stats.snapshot(),
        "access": dict(system.hierarchy.access_counts),
        "levels": [(level.name, level.hits, level.misses)
                   for level in system.hierarchy.levels],
        "lost": list(system.nvm.lost_writes),
    }


def test_batched_replay_speedup_and_byte_identity():
    trace = replay_trace(CONFIG)
    walls = {False: float("inf"), True: float("inf")}
    observed = {}
    for _ in range(REPLAY_ROUNDS):
        for batched in (False, True):
            system = SecureEpdSystem(CONFIG, scheme=SCHEME,
                                     batched=batched)
            start = time.perf_counter()
            expected = replay(system, trace, batched=batched)
            walls[batched] = min(walls[batched],
                                 time.perf_counter() - start)
            observed[batched] = (len(expected), _observe(system))

    for field in observed[False][1]:
        assert observed[True][1][field] == observed[False][1][field], (
            f"batched replay diverged from scalar on {field!r}")
    assert observed[True][0] == observed[False][0]

    speedup = walls[False] / walls[True]
    assert speedup >= REPLAY_SPEEDUP_FLOOR, (
        f"{SCHEME}: batched replay only {speedup:.2f}x faster than scalar "
        f"(scalar {walls[False] * 1e3:.0f} ms, "
        f"batched {walls[True] * 1e3:.0f} ms)")
