"""Benchmark: regenerate Figure 16 (Horus recovery time vs LLC size).

Paper series: recovery stays under 0.51 s (SLM) / 0.48 s (DLM) even at a
128 MB LLC.  This reproduction computes 0.510 s / 0.485 s from the same
Table I parameters, and additionally times the *functional* recovery engine
end to end at test scale.
"""

from benchmarks.conftest import report_result
from repro.core.system import SecureEpdSystem
from repro.experiments.fig16_recovery_time import run as run_fig16


def test_fig16_recovery_estimates(benchmark, suite):
    result = benchmark.pedantic(run_fig16, args=(suite,),
                                rounds=1, iterations=1)
    report_result(benchmark, result)


def test_functional_recovery_throughput(benchmark, suite):
    """Wall-clock of the real read-verify-decrypt-refill recovery loop."""
    def crash_then_recover():
        system = SecureEpdSystem(suite.config(), scheme="horus-dlm")
        system.fill_worst_case(seed=1)
        system.crash(seed=2)
        return system.recover()

    report = benchmark.pedantic(crash_then_recover, rounds=1, iterations=1)
    assert report.blocks_restored >= suite.config().total_cache_lines
    benchmark.extra_info["blocks_restored"] = report.blocks_restored
    benchmark.extra_info["simulated_seconds"] = report.seconds
