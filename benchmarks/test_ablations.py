"""Benchmarks: the beyond-paper ablation studies (DESIGN.md Section 6).

Each regenerates one ablation table and asserts its shape checks, mirroring
the figure benchmarks.  These quantify the design arguments around Horus:
spatial-locality obliviousness, the metadata-cache dead end, the coalescing
trade-off, the ADR/BBB/EPD spectrum, wear, memory parallelism, run-time
neutrality, and the drain-vs-recovery availability trade.
"""

import pytest

from benchmarks.conftest import report_result
from repro.experiments import ablations
from repro.experiments.adr_comparison import run as run_adr
from repro.experiments.availability import run as run_availability
from repro.experiments.parallelism import run as run_parallelism
from repro.experiments.runtime_overhead import run as run_runtime
from repro.experiments.scheduling import run as run_scheduling
from repro.experiments.wear import run as run_wear

CASES = {
    "scheduler": run_scheduling,
    "locality": ablations.run_locality,
    "metadata-cache": ablations.run_metadata_cache,
    "coalescing": ablations.run_coalescing,
    "adr-vs-epd": run_adr,
    "wear": run_wear,
    "parallelism": run_parallelism,
    "runtime": run_runtime,
    "availability": run_availability,
}


@pytest.mark.parametrize("name", list(CASES), ids=list(CASES))
def test_ablation(benchmark, sweep_suite, name):
    result = benchmark.pedantic(CASES[name], args=(sweep_suite,),
                                rounds=1, iterations=1)
    report_result(benchmark, result)
