"""Honest wall-clock benchmarks of the drain engines themselves.

Unlike the figure benchmarks (which regenerate the paper's *simulated*
numbers), these time the Python simulator, scheme by scheme, over identical
worst-case hierarchies — useful for tracking simulator performance
regressions and for comparing scheme complexity directly.
"""

import time

import pytest

from repro.common.config import SystemConfig
from repro.core.system import SCHEMES, SecureEpdSystem

CONFIG = SystemConfig.scaled(128)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_drain_wall_clock(benchmark, scheme):
    def drain_once():
        system = SecureEpdSystem(CONFIG, scheme=scheme)
        system.fill_worst_case(seed=1)
        return system.crash(seed=2)

    report = benchmark.pedantic(drain_once, rounds=3, iterations=1)
    assert report.flushed_blocks == CONFIG.total_cache_lines
    benchmark.extra_info["simulated_ms"] = report.milliseconds
    benchmark.extra_info["memory_requests"] = report.total_memory_requests


def _drain_seconds(scheme: str, batched: bool, rounds: int = 5) -> float:
    """Best-of-N wall seconds of the drain alone (fill excluded)."""
    best = float("inf")
    for _ in range(rounds):
        system = SecureEpdSystem(CONFIG, scheme=scheme, batched=batched)
        system.fill_worst_case(seed=1)
        start = time.perf_counter()
        system.crash(seed=2)
        best = min(best, time.perf_counter() - start)
    return best


DRAIN_SPEEDUP_FLOOR = 2.25


@pytest.mark.parametrize("scheme", ["horus-slm", "horus-dlm"])
def test_batched_drain_speedup(scheme):
    """The batched drain path is >=2.25x faster than scalar at LLC scale.

    Best-of-5 on both sides makes the ratio robust to background load:
    both paths run the same episode on the same machine, so machine speed
    cancels out of the comparison.  The floor sits below the measured
    speedups with the arena substrate (3.0x dlm / 2.7x slm) by a noise
    margin; raise it only when the measured ratios move.
    """
    scalar = _drain_seconds(scheme, batched=False)
    batched = _drain_seconds(scheme, batched=True)
    speedup = scalar / batched
    assert speedup >= DRAIN_SPEEDUP_FLOOR, (
        f"{scheme}: batched drain only {speedup:.2f}x faster than scalar "
        f"(scalar {scalar * 1e3:.1f} ms, batched {batched * 1e3:.1f} ms)")
