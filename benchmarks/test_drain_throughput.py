"""Honest wall-clock benchmarks of the drain engines themselves.

Unlike the figure benchmarks (which regenerate the paper's *simulated*
numbers), these time the Python simulator, scheme by scheme, over identical
worst-case hierarchies — useful for tracking simulator performance
regressions and for comparing scheme complexity directly.
"""

import pytest

from repro.common.config import SystemConfig
from repro.core.system import SCHEMES, SecureEpdSystem

CONFIG = SystemConfig.scaled(128)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_drain_wall_clock(benchmark, scheme):
    def drain_once():
        system = SecureEpdSystem(CONFIG, scheme=scheme)
        system.fill_worst_case(seed=1)
        return system.crash(seed=2)

    report = benchmark.pedantic(drain_once, rounds=3, iterations=1)
    assert report.flushed_blocks == CONFIG.total_cache_lines
    benchmark.extra_info["simulated_ms"] = report.milliseconds
    benchmark.extra_info["memory_requests"] = report.total_memory_requests
