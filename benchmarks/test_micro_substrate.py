"""Microbenchmarks of the substrates the drain and replay engines are
built on."""

from repro.common.config import SystemConfig
from repro.core.system import SecureEpdSystem
from repro.crypto.primitives import compute_mac, encrypt_block
from repro.metadata.merkle import InMemoryMerkleTree
from benchmarks.bench_runner import cache_model_ops, replay_cache_model

CONFIG = SystemConfig.scaled(256)
REPLAY_CONFIG = SystemConfig.scaled(128)
KEY = b"bench-key"


def test_counter_mode_encrypt_block(benchmark):
    payload = bytes(range(64))
    benchmark(encrypt_block, KEY, 4096, 17, payload)


def test_mac_computation(benchmark):
    payload = bytes(range(64))
    benchmark(compute_mac, KEY, payload)


def test_secure_controller_sparse_write(benchmark):
    """One full secure write (counter fetch+verify, MAC, tree bookkeeping)
    at a fresh 4 KiB-distant address each call — the baseline drain's
    per-line cost."""
    system = SecureEpdSystem(CONFIG, scheme="base-lu")
    state = {"i": 0}

    def write_next():
        address = (state["i"] * 4096) % CONFIG.memory.size
        state["i"] += 1
        system.controller.write(address, b"\x5a" * 64)

    benchmark.pedantic(write_next, rounds=200, iterations=1)


def test_horus_vault_throughput(benchmark):
    """Full Horus drains per second at 1/256 scale (~1200 lines each)."""
    def vault_once():
        system = SecureEpdSystem(CONFIG, scheme="horus-dlm")
        system.fill_worst_case(seed=1)
        return system.crash(seed=2)

    report = benchmark.pedantic(vault_once, rounds=3, iterations=1)
    assert report.total_reads == 0


def test_cache_model_thrash(benchmark):
    """Pure fused-epoch replay of an LLC-thrashing sweep: every
    steady-state access walks the full miss path (three-level probe,
    LLC eviction with back-invalidation, marker install), so this is the
    cache model's worst case — no memory side, no trace objects."""
    ops = cache_model_ops("thrash", REPLAY_CONFIG)
    hierarchy = benchmark.pedantic(
        replay_cache_model, args=(REPLAY_CONFIG, ops), rounds=3,
        iterations=1)
    assert hierarchy.access_counts["miss"] > len(ops) // 2


def test_cache_model_all_hit(benchmark):
    """Pure fused-epoch replay of an L1-resident round-robin: after
    warmup every access is the two-dict-op hit path, the cache model's
    best case."""
    ops = cache_model_ops("all-hit", REPLAY_CONFIG)
    hierarchy = benchmark.pedantic(
        replay_cache_model, args=(REPLAY_CONFIG, ops), rounds=3,
        iterations=1)
    assert hierarchy.access_counts["miss"] < len(ops) // 100


def test_cache_model_zipf(benchmark):
    """Pure fused-epoch replay of a skewed zipf-like draw — the
    YCSB-shaped middle ground between the thrash and all-hit extremes."""
    ops = cache_model_ops("zipf", REPLAY_CONFIG)
    hierarchy = benchmark.pedantic(
        replay_cache_model, args=(REPLAY_CONFIG, ops), rounds=3,
        iterations=1)
    counts = hierarchy.access_counts
    assert 0 < counts["miss"] < len(ops) // 2


def test_merkle_tree_build(benchmark):
    leaves = [i.to_bytes(8, "little") * 8 for i in range(512)]
    tree = benchmark(InMemoryMerkleTree, leaves)
    assert tree.num_leaves == 512
