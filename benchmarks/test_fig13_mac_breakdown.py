"""Benchmark: regenerate Figure 13 (MAC-calculation breakdown per scheme).

Paper series: Base-EU spends the most MACs (tree updates dominate); Base-LU
is dominated by verification MACs; Horus MACs are the per-flushed-line CHV
MACs with DLM at exactly 1.125x SLM.
"""

from benchmarks.conftest import report_result
from repro.experiments.fig13_mac_breakdown import run as run_fig13


def test_fig13_mac_breakdown(benchmark, suite):
    result = benchmark.pedantic(run_fig13, args=(suite,),
                                rounds=1, iterations=1)
    report_result(benchmark, result)
