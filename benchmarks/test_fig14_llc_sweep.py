"""Benchmark: regenerate Figure 14 (memory requests vs LLC size).

Paper series: across 8/16/32 MB LLCs, Horus needs >= 7.0x fewer memory
requests than Base-LU, normalized per LLC size.
"""

from benchmarks.conftest import report_result
from repro.experiments.fig14_15_llc_sweep import run_fig14


def test_fig14_llc_sweep(benchmark, sweep_suite):
    result = benchmark.pedantic(run_fig14, args=(sweep_suite,),
                                rounds=1, iterations=1)
    report_result(benchmark, result)
