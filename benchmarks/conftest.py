"""Benchmark fixtures.

The figure/table benchmarks share one memoized drain suite at 1/16 scale —
the calibration point where the simulated Base-LU already shows the paper's
~10x memory-request explosion (full scale reproduces 10.13x vs the paper's
10.3x; see EXPERIMENTS.md).  Set ``REPRO_BENCH_SCALE=1`` to run the
benchmarks at the paper's full Table I configuration (~2 minutes).

Both suites are backed by the persistent drain-report cache under
``results/.cache/`` (shared with ``python -m repro.experiments.runner``), so
a warm rerun skips every already-computed episode.  Set
``REPRO_BENCH_CACHE=0`` to disable the cache — e.g. when the wall times of
the drain episodes themselves are what is being measured.
"""

import os

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.suite import DrainSuite

BENCH_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "16"))
BENCH_CACHE = os.environ.get("REPRO_BENCH_CACHE", "1") != "0"


def _cache() -> ResultCache | None:
    return ResultCache() if BENCH_CACHE else None


@pytest.fixture(scope="session")
def suite() -> DrainSuite:
    return DrainSuite(scale=BENCH_SCALE, cache=_cache())


@pytest.fixture(scope="session")
def sweep_suite() -> DrainSuite:
    """Separate suite for the LLC sweeps and multi-drain ablations.

    These run several times the drains of the single-config benchmarks, so
    they keep a 1/32 floor even under ``REPRO_BENCH_SCALE=1`` (the
    full-scale sweep lives in ``python -m repro --scale 1``).
    """
    return DrainSuite(scale=max(BENCH_SCALE, 32), cache=_cache())


def report_result(benchmark, result) -> None:
    """Attach the regenerated table to the benchmark record and print it."""
    benchmark.extra_info["experiment"] = result.experiment_id
    benchmark.extra_info["checks"] = [str(check) for check in result.checks]
    print()
    print(result.to_text())
    failed = [check for check in result.checks if not check.passed]
    assert not failed, failed
