"""Benchmark: regenerate Table III (battery size needed for draining).

Paper rows (SuperCap cm^3, full scale): 30.7 / 34.4 / 6.8 / 6.6 — at least
a 4.4x battery-size reduction with Horus, identical ratio for Li-thin.
"""

from benchmarks.conftest import report_result
from repro.experiments.table3_battery import run as run_table3


def test_table3_battery(benchmark, suite):
    result = benchmark.pedantic(run_table3, args=(suite,),
                                rounds=1, iterations=1)
    report_result(benchmark, result)
