"""Benchmark runner for the perf-regression gate.

Times a pinned subset of simulator hot paths and emits a machine-readable
``BENCH_pr.json``.  Because CI machines differ wildly in absolute speed, two
kinds of metric are recorded:

* ``ratio`` metrics (batched-vs-scalar speedups) — dimensionless, directly
  comparable across machines;
* ``time`` metrics — wall seconds *normalized by a calibration workload*
  (a fixed loop over the same BLAKE2b/int primitives the simulator leans
  on), so "this machine is 2x slower overall" cancels out and only real
  regressions in the simulator remain.

Usage::

    PYTHONPATH=src python benchmarks/bench_runner.py --output BENCH_pr.json
    PYTHONPATH=src python benchmarks/bench_compare.py \
        benchmarks/BENCH_baseline.json BENCH_pr.json

The committed ``benchmarks/BENCH_baseline.json`` is regenerated with
``--output benchmarks/BENCH_baseline.json`` whenever an intentional
performance change lands (note it in the PR).
"""

import argparse
import hashlib
import json
import platform
import sys
import time

from repro.common.config import SystemConfig
from repro.core.system import SecureEpdSystem

DRAIN_SCALE = 128
"""The LLC-scale configuration every drain metric is pinned to."""

SWEEP_SCALE = 64
"""Scale of the fig14 LLC sweep timing (cache disabled)."""

REPEATS = 5
"""Best-of-N for the millisecond-scale measurements (the seconds-long
fig14 sweep uses best-of-2)."""

REPLAY_OPS = 100_000
"""Trace length of the replay-throughput workload (YCSB-A)."""

REPLAY_ROUNDS = 3
"""Interleaved scalar/batched rounds for the replay metric: each round
times both sides back to back, so background load lands on both and the
min/min ratio stays honest."""

SHARD_COUNT = 4
"""Fleet size of the sharded-replay metric."""

SHARD_OPS = 20_000
"""Trace length of the sharded multi-tenant replay workload."""

SHARD_TENANTS = 32
"""Tenant count of the sharded replay's mix plan."""


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def calibration_workload() -> None:
    """A fixed pure-Python loop over the simulator's hot primitives.

    Roughly one drain episode's worth of keyed-hash forks, integer XORs,
    and bytes assembly — its wall time tracks how fast this machine runs
    the simulator's kind of Python, which is exactly the factor to divide
    out of the ``time`` metrics.
    """
    base = hashlib.blake2b(key=b"bench-calibration-key", digest_size=8)
    accumulator = 0
    chunks = []
    payload = bytes(range(64))
    for i in range(50_000):
        fork = base.copy()
        fork.update(i.to_bytes(8, "little") + i.to_bytes(16, "little"))
        digest = fork.digest()
        accumulator ^= int.from_bytes(digest, "little")
        if i % 64 == 0:
            chunks.append(payload)
    blob = b"".join(chunks)
    accumulator ^= int.from_bytes(blob[:8], "little")


def _drain_wall(scheme: str, batched: bool,
                config: SystemConfig) -> tuple[float, int]:
    """Best-of-N wall seconds of the drain itself (fill excluded)."""
    best = float("inf")
    blocks = 0
    for _ in range(REPEATS):
        system = SecureEpdSystem(config, scheme=scheme, batched=batched)
        system.fill_worst_case(seed=1)
        start = time.perf_counter()
        report = system.crash(seed=2)
        best = min(best, time.perf_counter() - start)
        blocks = report.flushed_blocks + report.metadata_blocks
    return best, blocks


def _recovery_wall(scheme: str, batched: bool,
                   config: SystemConfig) -> float:
    def once():
        system = SecureEpdSystem(config, scheme=scheme, batched=batched)
        system.fill_worst_case(seed=1)
        system.crash(seed=2)
        start = time.perf_counter()
        system.recover()
        return time.perf_counter() - start

    return min(once() for _ in range(REPEATS))


def replay_trace(config: SystemConfig) -> list:
    """The pinned replay workload: a 100k-op YCSB-A trace whose working
    set is twice the LLC's capacity (every round misses substantially)."""
    from repro.workloads.ycsb import ycsb_trace
    return ycsb_trace("a", num_ops=REPLAY_OPS,
                      footprint_blocks=config.llc.num_lines * 2, seed=87)


def _replay_walls(scheme: str, config: SystemConfig) -> tuple[float, float]:
    """(scalar, batched) best wall seconds over interleaved rounds."""
    from repro.workloads.replay import replay

    trace = replay_trace(config)
    best = {False: float("inf"), True: float("inf")}
    for _ in range(REPLAY_ROUNDS):
        for batched in (False, True):
            system = SecureEpdSystem(config, scheme=scheme, batched=batched)
            start = time.perf_counter()
            replay(system, trace, batched=batched)
            best[batched] = min(best[batched],
                                time.perf_counter() - start)
    return best[False], best[True]


def _fill_walls(scheme: str, config: SystemConfig) -> tuple[float, float]:
    """(scalar, batched) best wall seconds of fill_worst_case."""
    best = {False: float("inf"), True: float("inf")}
    for _ in range(REPEATS):
        for batched in (False, True):
            system = SecureEpdSystem(config, scheme=scheme, batched=batched)
            start = time.perf_counter()
            system.fill_worst_case(seed=1)
            best[batched] = min(best[batched],
                                time.perf_counter() - start)
    return best[False], best[True]


def _paper_fill_walls(scheme: str) -> tuple[float, float, int]:
    """(scalar, batched, lines) wall seconds of ``fill_worst_case`` at the
    paper's full Table I geometry (295,936 LLC lines).

    Seconds-long per round, so two interleaved rounds bound the runtime
    while keeping the min/min ratio honest against background load.
    """
    config = SystemConfig.paper()
    best = {False: float("inf"), True: float("inf")}
    lines = 0
    for _ in range(2):
        for batched in (False, True):
            system = SecureEpdSystem(config, scheme=scheme, batched=batched)
            start = time.perf_counter()
            lines = system.fill_worst_case(seed=1)
            best[batched] = min(best[batched],
                                time.perf_counter() - start)
    return best[False], best[True], lines


def _shard_walls(config: SystemConfig) -> tuple[float, float]:
    """(solo, sharded) best wall seconds of one multi-tenant fleet replay.

    Both sides run the identical per-controller work — the solo side
    replays each shard's routed sub-trace on standalone systems keyed the
    same way — so solo/sharded isolates the router + facade overhead as a
    machine-independent ratio (1.0 = free routing; a drop means the routed
    path got slower).  Rounds interleave the two sides like the replay
    metric does.
    """
    from repro.core.system import SecureEpdSystem as Solo
    from repro.sharding.keys import TenantKeyring
    from repro.sharding.router import ShardRouter
    from repro.sharding.system import ShardedSecureSystem, shard_key_schedules
    from repro.workloads.replay import replay
    from repro.workloads.tenantmix import TenantMixer, TenantMixPlan
    from repro.mem.regions import MemoryLayout

    router = ShardRouter(config, SHARD_COUNT)
    plan = TenantMixPlan(
        num_tenants=SHARD_TENANTS, total_ops=SHARD_OPS,
        data_size=MemoryLayout(config).data.size * SHARD_COUNT,
        master_seed=87)
    keyring = TenantKeyring(plan.extents())
    mix = TenantMixer(plan).mix()
    parts = router.split(mix)
    schedules = shard_key_schedules(router, keyring, "horus-dlm")

    best = {"solo": float("inf"), "sharded": float("inf")}
    for _ in range(REPLAY_ROUNDS):
        solos = [Solo(config, scheme="horus-dlm", key_schedule=schedule)
                 for schedule in schedules]
        start = time.perf_counter()
        for system, part in zip(solos, parts):
            if part:
                replay(system, part)
        best["solo"] = min(best["solo"], time.perf_counter() - start)

        fleet = ShardedSecureSystem(config, num_shards=SHARD_COUNT,
                                    scheme="horus-dlm", keyring=keyring)
        start = time.perf_counter()
        fleet.replay(mix)
        best["sharded"] = min(best["sharded"],
                              time.perf_counter() - start)
    return best["solo"], best["sharded"]


def _fig14_wall() -> float:
    from repro.experiments.fig14_15_llc_sweep import run_fig14
    from repro.experiments.suite import DrainSuite

    def once():
        run_fig14(DrainSuite(scale=SWEEP_SCALE, cache=None))

    # Seconds-long, so two rounds keep the total runtime reasonable while
    # shielding the gate from a one-off scheduler hiccup.
    return _best_of(once, repeats=2)


def run_benchmarks() -> dict:
    calibration = _best_of(calibration_workload)
    config = SystemConfig.scaled(DRAIN_SCALE)

    metrics: dict[str, dict] = {}

    for scheme in ("horus-slm", "horus-dlm", "nosec"):
        batched_s, blocks = _drain_wall(scheme, True, config)
        scalar_s, _ = _drain_wall(scheme, False, config)
        metrics[f"drain:{scheme}:batched"] = {
            "kind": "time", "seconds": batched_s,
            "normalized": batched_s / calibration,
            "blocks_per_second": blocks / batched_s,
        }
        metrics[f"drain:{scheme}:speedup"] = {
            "kind": "ratio", "value": scalar_s / batched_s,
        }

    scalar_replay, batched_replay = _replay_walls("horus-dlm", config)
    metrics["replay:horus-dlm:batched"] = {
        "kind": "time", "seconds": batched_replay,
        "normalized": batched_replay / calibration,
        "ops_per_second": REPLAY_OPS / batched_replay,
    }
    metrics["replay:horus-dlm:speedup"] = {
        "kind": "ratio", "value": scalar_replay / batched_replay,
    }

    scalar_fill, batched_fill = _fill_walls("horus-dlm", config)
    metrics["fill:horus-dlm:batched"] = {
        "kind": "time", "seconds": batched_fill,
        "normalized": batched_fill / calibration,
    }
    metrics["fill:horus-dlm:speedup"] = {
        "kind": "ratio", "value": scalar_fill / batched_fill,
    }

    paper_scalar, paper_batched, paper_lines = _paper_fill_walls("horus-dlm")
    metrics["fill:horus-dlm:paper-batched"] = {
        "kind": "time", "seconds": paper_batched,
        "normalized": paper_batched / calibration,
        "lines_per_second": paper_lines / paper_batched,
    }
    metrics["fill:horus-dlm:paper-speedup"] = {
        "kind": "ratio", "value": paper_scalar / paper_batched,
    }

    solo_shard, sharded = _shard_walls(config)
    metrics[f"shard:{SHARD_COUNT}:replay"] = {
        "kind": "time", "seconds": sharded,
        "normalized": sharded / calibration,
        "ops_per_second": SHARD_OPS / sharded,
    }
    metrics[f"shard:{SHARD_COUNT}:efficiency"] = {
        "kind": "ratio", "value": solo_shard / sharded,
    }

    recovery_s = _recovery_wall("horus-dlm", True, config)
    metrics["recovery:horus-dlm:batched"] = {
        "kind": "time", "seconds": recovery_s,
        "normalized": recovery_s / calibration,
    }

    fig14_s = _fig14_wall()
    metrics["fig14:sweep"] = {
        "kind": "time", "seconds": fig14_s,
        "normalized": fig14_s / calibration,
    }

    return {
        "meta": {
            "calibration_seconds": calibration,
            "drain_scale": DRAIN_SCALE,
            "sweep_scale": SWEEP_SCALE,
            "repeats": REPEATS,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "metrics": metrics,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Time the pinned benchmark subset and emit JSON.")
    parser.add_argument("--output", default="BENCH_pr.json",
                        help="where to write the result (default: "
                             "BENCH_pr.json)")
    args = parser.parse_args(argv)

    payload = run_benchmarks()
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    calibration = payload["meta"]["calibration_seconds"]
    print(f"calibration: {calibration * 1e3:.1f} ms")
    for name, metric in sorted(payload["metrics"].items()):
        if metric["kind"] == "ratio":
            print(f"{name}: {metric['value']:.2f}x")
        else:
            print(f"{name}: {metric['seconds'] * 1e3:.1f} ms "
                  f"(normalized {metric['normalized']:.2f})")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
