"""Benchmark runner for the perf-regression gate.

Times a pinned subset of simulator hot paths and emits a machine-readable
``BENCH_pr.json``.  Because CI machines differ wildly in absolute speed, two
kinds of metric are recorded:

* ``ratio`` metrics (batched-vs-scalar speedups) — dimensionless, directly
  comparable across machines;
* ``time`` metrics — wall seconds *normalized by a calibration workload*
  (a fixed loop over the same BLAKE2b/int primitives the simulator leans
  on), so "this machine is 2x slower overall" cancels out and only real
  regressions in the simulator remain.

Usage::

    PYTHONPATH=src python benchmarks/bench_runner.py --output BENCH_pr.json
    PYTHONPATH=src python benchmarks/bench_compare.py \
        benchmarks/BENCH_baseline.json BENCH_pr.json

The committed ``benchmarks/BENCH_baseline.json`` is regenerated with
``--output benchmarks/BENCH_baseline.json`` whenever an intentional
performance change lands (note it in the PR).
"""

import argparse
import hashlib
import json
import platform
import random
import sys
import time

from repro.common.config import SystemConfig
from repro.core.system import SecureEpdSystem

DRAIN_SCALE = 128
"""The LLC-scale configuration every drain metric is pinned to."""

SWEEP_SCALE = 64
"""Scale of the fig14 LLC sweep timing (cache disabled)."""

REPEATS = 5
"""Best-of-N for the millisecond-scale measurements (the seconds-long
fig14 sweep uses best-of-2)."""

REPLAY_OPS = 100_000
"""Trace length of the replay-throughput workload (YCSB-A)."""

REPLAY_ROUNDS = 3
"""Interleaved scalar/batched rounds for the replay metric: each round
times both sides back to back, so background load lands on both and the
min/min ratio stays honest."""

CACHE_MODEL_OPS = 32_768
"""Ops per synthetic mix of the cache-model metric (8 default epochs)."""

CACHE_MODEL_MIXES = ("thrash", "all-hit", "zipf")
"""The synthetic access mixes the cache-model metric cycles through:
an LLC-thrashing sequential sweep (every steady-state access misses and
evicts), an L1-resident round-robin (every access hits), and a skewed
zipf-like draw (the YCSB-shaped middle ground)."""

SHARD_COUNT = 4
"""Fleet size of the sharded-replay metric."""

SHARD_OPS = 20_000
"""Trace length of the sharded multi-tenant replay workload."""

SHARD_TENANTS = 32
"""Tenant count of the sharded replay's mix plan."""


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def calibration_workload() -> None:
    """A fixed pure-Python loop over the simulator's hot primitives.

    Roughly one drain episode's worth of keyed-hash forks, integer XORs,
    and bytes assembly — its wall time tracks how fast this machine runs
    the simulator's kind of Python, which is exactly the factor to divide
    out of the ``time`` metrics.
    """
    base = hashlib.blake2b(key=b"bench-calibration-key", digest_size=8)
    accumulator = 0
    chunks = []
    payload = bytes(range(64))
    for i in range(50_000):
        fork = base.copy()
        fork.update(i.to_bytes(8, "little") + i.to_bytes(16, "little"))
        digest = fork.digest()
        accumulator ^= int.from_bytes(digest, "little")
        if i % 64 == 0:
            chunks.append(payload)
    blob = b"".join(chunks)
    accumulator ^= int.from_bytes(blob[:8], "little")


def _drain_wall(scheme: str, batched: bool,
                config: SystemConfig) -> tuple[float, int]:
    """Best-of-N wall seconds of the drain itself (fill excluded)."""
    best = float("inf")
    blocks = 0
    for _ in range(REPEATS):
        system = SecureEpdSystem(config, scheme=scheme, batched=batched)
        system.fill_worst_case(seed=1)
        start = time.perf_counter()
        report = system.crash(seed=2)
        best = min(best, time.perf_counter() - start)
        blocks = report.flushed_blocks + report.metadata_blocks
    return best, blocks


def _recovery_wall(scheme: str, batched: bool,
                   config: SystemConfig) -> float:
    def once():
        system = SecureEpdSystem(config, scheme=scheme, batched=batched)
        system.fill_worst_case(seed=1)
        system.crash(seed=2)
        start = time.perf_counter()
        system.recover()
        return time.perf_counter() - start

    return min(once() for _ in range(REPEATS))


def replay_trace(config: SystemConfig) -> list:
    """The pinned replay workload: a 100k-op YCSB-A trace whose working
    set is twice the LLC's capacity (every round misses substantially)."""
    from repro.workloads.ycsb import ycsb_trace
    return ycsb_trace("a", num_ops=REPLAY_OPS,
                      footprint_blocks=config.llc.num_lines * 2, seed=87)


def cache_model_ops(kind: str, config: SystemConfig,
                    num_ops: int = CACHE_MODEL_OPS,
                    seed: int = 5) -> list:
    """One synthetic op mix for the pure cache-model benchmark.

    Already in :meth:`~repro.cache.hierarchy.CacheHierarchy.replay_epoch`'s
    wire form — ``("w", address, payload)`` / ``("r", address, None)``
    tuples, block-aligned, 50/50 read/write — so timing it exercises the
    fused cache pass alone, with no trace objects and no memory side.
    """
    line_size = config.l1.line_size
    if kind == "thrash":
        footprint = config.llc.num_lines * 2
        addresses = [i % footprint * line_size for i in range(num_ops)]
    elif kind == "all-hit":
        footprint = max(config.l1.num_lines // 2, 1)
        addresses = [i % footprint * line_size for i in range(num_ops)]
    elif kind == "zipf":
        footprint = config.llc.num_lines * 4
        draw = random.Random(seed).random
        addresses = [int(footprint * draw() ** 4) * line_size
                     for _ in range(num_ops)]
    else:
        raise ValueError(f"unknown cache-model mix {kind!r}")
    payload = bytes(line_size)
    flip = random.Random(seed + 1).random
    return [("w", address, payload) if flip() < 0.5
            else ("r", address, None)
            for address in addresses]


def replay_cache_model(config: SystemConfig, ops: list):
    """Run ``ops`` through a bare hierarchy's fused epoch pass.

    Markers are resolved with zero blocks in place of fetched data, so the
    hierarchy stays well-formed across epochs while no NVM, crypto, or
    controller work dilutes the measurement.
    """
    from repro.cache.hierarchy import CacheHierarchy
    from repro.workloads.replay import DEFAULT_EPOCH_OPS

    hierarchy = CacheHierarchy(config)
    fill = bytes(config.l1.line_size)
    with hierarchy.epoch_session():
        for start in range(0, len(ops), DEFAULT_EPOCH_OPS):
            _, fills = hierarchy.replay_epoch(
                ops[start:start + DEFAULT_EPOCH_OPS])
            hierarchy.resolve_pending(fills, [fill] * len(fills))
    return hierarchy


def _cache_model_wall(config: SystemConfig) -> float:
    mixes = [cache_model_ops(kind, config) for kind in CACHE_MODEL_MIXES]

    def once():
        for ops in mixes:
            replay_cache_model(config, ops)

    return _best_of(once)


def _replay_walls(scheme: str, config: SystemConfig) -> tuple[float, float]:
    """(scalar, batched) best wall seconds over interleaved rounds."""
    from repro.workloads.replay import replay

    trace = replay_trace(config)
    best = {False: float("inf"), True: float("inf")}
    for _ in range(REPLAY_ROUNDS):
        for batched in (False, True):
            system = SecureEpdSystem(config, scheme=scheme, batched=batched)
            start = time.perf_counter()
            replay(system, trace, batched=batched)
            best[batched] = min(best[batched],
                                time.perf_counter() - start)
    return best[False], best[True]


def _fill_walls(scheme: str, config: SystemConfig) -> tuple[float, float]:
    """(scalar, batched) best wall seconds of fill_worst_case."""
    best = {False: float("inf"), True: float("inf")}
    for _ in range(REPEATS):
        for batched in (False, True):
            system = SecureEpdSystem(config, scheme=scheme, batched=batched)
            start = time.perf_counter()
            system.fill_worst_case(seed=1)
            best[batched] = min(best[batched],
                                time.perf_counter() - start)
    return best[False], best[True]


def _paper_fill_walls(scheme: str) -> tuple[float, float, int]:
    """(scalar, batched, lines) wall seconds of ``fill_worst_case`` at the
    paper's full Table I geometry (295,936 LLC lines).

    Seconds-long per round, so two interleaved rounds bound the runtime
    while keeping the min/min ratio honest against background load.
    """
    config = SystemConfig.paper()
    best = {False: float("inf"), True: float("inf")}
    lines = 0
    for _ in range(2):
        for batched in (False, True):
            system = SecureEpdSystem(config, scheme=scheme, batched=batched)
            start = time.perf_counter()
            lines = system.fill_worst_case(seed=1)
            best[batched] = min(best[batched],
                                time.perf_counter() - start)
    return best[False], best[True], lines


def _shard_walls(config: SystemConfig) -> tuple[float, float]:
    """(solo, sharded) best wall seconds of one multi-tenant fleet replay.

    Both sides run the identical per-controller work — the solo side
    replays each shard's routed sub-trace on standalone systems keyed the
    same way — so solo/sharded isolates the router + facade overhead as a
    machine-independent ratio (1.0 = free routing; a drop means the routed
    path got slower).  Rounds interleave the two sides like the replay
    metric does.
    """
    from repro.core.system import SecureEpdSystem as Solo
    from repro.sharding.keys import TenantKeyring
    from repro.sharding.router import ShardRouter
    from repro.sharding.system import ShardedSecureSystem, shard_key_schedules
    from repro.workloads.replay import replay
    from repro.workloads.tenantmix import TenantMixer, TenantMixPlan
    from repro.mem.regions import MemoryLayout

    router = ShardRouter(config, SHARD_COUNT)
    plan = TenantMixPlan(
        num_tenants=SHARD_TENANTS, total_ops=SHARD_OPS,
        data_size=MemoryLayout(config).data.size * SHARD_COUNT,
        master_seed=87)
    keyring = TenantKeyring(plan.extents())
    mix = TenantMixer(plan).mix()
    parts = router.split(mix)
    schedules = shard_key_schedules(router, keyring, "horus-dlm")

    best = {"solo": float("inf"), "sharded": float("inf")}
    for _ in range(REPLAY_ROUNDS):
        solos = [Solo(config, scheme="horus-dlm", key_schedule=schedule)
                 for schedule in schedules]
        start = time.perf_counter()
        for system, part in zip(solos, parts):
            if part:
                replay(system, part)
        best["solo"] = min(best["solo"], time.perf_counter() - start)

        fleet = ShardedSecureSystem(config, num_shards=SHARD_COUNT,
                                    scheme="horus-dlm", keyring=keyring)
        start = time.perf_counter()
        fleet.replay(mix)
        best["sharded"] = min(best["sharded"],
                              time.perf_counter() - start)
    return best["solo"], best["sharded"]


def _fig14_wall() -> float:
    from repro.experiments.fig14_15_llc_sweep import run_fig14
    from repro.experiments.suite import DrainSuite

    def once():
        run_fig14(DrainSuite(scale=SWEEP_SCALE, cache=None))

    # Seconds-long, so two rounds keep the total runtime reasonable while
    # shielding the gate from a one-off scheduler hiccup.
    return _best_of(once, repeats=2)


def run_benchmarks() -> dict:
    calibration = _best_of(calibration_workload)
    config = SystemConfig.scaled(DRAIN_SCALE)

    metrics: dict[str, dict] = {}

    for scheme in ("horus-slm", "horus-dlm", "nosec"):
        batched_s, blocks = _drain_wall(scheme, True, config)
        scalar_s, _ = _drain_wall(scheme, False, config)
        metrics[f"drain:{scheme}:batched"] = {
            "kind": "time", "seconds": batched_s,
            "normalized": batched_s / calibration,
            "blocks_per_second": blocks / batched_s,
        }
        metrics[f"drain:{scheme}:speedup"] = {
            "kind": "ratio", "value": scalar_s / batched_s,
        }

    scalar_replay, batched_replay = _replay_walls("horus-dlm", config)
    metrics["replay:horus-dlm:batched"] = {
        "kind": "time", "seconds": batched_replay,
        "normalized": batched_replay / calibration,
        "ops_per_second": REPLAY_OPS / batched_replay,
    }
    metrics["replay:horus-dlm:speedup"] = {
        "kind": "ratio", "value": scalar_replay / batched_replay,
    }

    cache_model_s = _cache_model_wall(config)
    metrics["replay:cache-model:mixed"] = {
        "kind": "time", "seconds": cache_model_s,
        "normalized": cache_model_s / calibration,
        "ops_per_second":
            CACHE_MODEL_OPS * len(CACHE_MODEL_MIXES) / cache_model_s,
    }

    scalar_fill, batched_fill = _fill_walls("horus-dlm", config)
    metrics["fill:horus-dlm:batched"] = {
        "kind": "time", "seconds": batched_fill,
        "normalized": batched_fill / calibration,
    }
    metrics["fill:horus-dlm:speedup"] = {
        "kind": "ratio", "value": scalar_fill / batched_fill,
    }

    paper_scalar, paper_batched, paper_lines = _paper_fill_walls("horus-dlm")
    metrics["fill:horus-dlm:paper-batched"] = {
        "kind": "time", "seconds": paper_batched,
        "normalized": paper_batched / calibration,
        "lines_per_second": paper_lines / paper_batched,
    }
    metrics["fill:horus-dlm:paper-speedup"] = {
        "kind": "ratio", "value": paper_scalar / paper_batched,
    }

    solo_shard, sharded = _shard_walls(config)
    metrics[f"shard:{SHARD_COUNT}:replay"] = {
        "kind": "time", "seconds": sharded,
        "normalized": sharded / calibration,
        "ops_per_second": SHARD_OPS / sharded,
    }
    metrics[f"shard:{SHARD_COUNT}:efficiency"] = {
        "kind": "ratio", "value": solo_shard / sharded,
    }

    recovery_s = _recovery_wall("horus-dlm", True, config)
    metrics["recovery:horus-dlm:batched"] = {
        "kind": "time", "seconds": recovery_s,
        "normalized": recovery_s / calibration,
    }

    fig14_s = _fig14_wall()
    metrics["fig14:sweep"] = {
        "kind": "time", "seconds": fig14_s,
        "normalized": fig14_s / calibration,
    }

    return {
        "meta": {
            "calibration_seconds": calibration,
            "drain_scale": DRAIN_SCALE,
            "sweep_scale": SWEEP_SCALE,
            "repeats": REPEATS,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "metrics": metrics,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Time the pinned benchmark subset and emit JSON.")
    parser.add_argument("--output", default="BENCH_pr.json",
                        help="where to write the result (default: "
                             "BENCH_pr.json)")
    args = parser.parse_args(argv)

    payload = run_benchmarks()
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    calibration = payload["meta"]["calibration_seconds"]
    print(f"calibration: {calibration * 1e3:.1f} ms")
    for name, metric in sorted(payload["metrics"].items()):
        if metric["kind"] == "ratio":
            print(f"{name}: {metric['value']:.2f}x")
        else:
            print(f"{name}: {metric['seconds'] * 1e3:.1f} ms "
                  f"(normalized {metric['normalized']:.2f})")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
