"""Benchmark: regenerate Table II (drain energy breakdown).

Paper rows (J, full scale): Base-LU 11.07, Base-EU 12.39, Horus-SLM 2.45,
Horus-DLM 2.38 — processor energy dominating and tracking drain time.
Energies scale with the configuration; the shape checks are scale-free.
"""

from benchmarks.conftest import report_result
from repro.experiments.table2_energy import run as run_table2


def test_table2_energy(benchmark, suite):
    result = benchmark.pedantic(run_table2, args=(suite,),
                                rounds=1, iterations=1)
    report_result(benchmark, result)
