"""Benchmark: regenerate Figure 11 (normalized drain time).

Paper series: Base-EU/Base-LU drain 5.1x/4.5x slower than Horus; Horus cuts
the secure hold-up from 8.6x of non-secure to 1.7x.  This reproduction
measures Base-LU ~5.2x slower than Horus-SLM and Horus at ~1.35x non-secure.
"""

from benchmarks.conftest import report_result
from repro.experiments.fig11_drain_time import run as run_fig11


def test_fig11_drain_time(benchmark, suite):
    result = benchmark.pedantic(run_fig11, args=(suite,),
                                rounds=1, iterations=1)
    report_result(benchmark, result)
