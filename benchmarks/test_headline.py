"""Benchmark: the paper's headline claims in one table.

Abstract numbers — 8x fewer memory requests, 7.8x fewer MACs, 5x faster
drain than the lazy secure baseline; 10.3x motivation factor — all
regenerated from one memoized drain suite.
"""

from benchmarks.conftest import report_result
from repro.experiments.headline import run as run_headline


def test_headline_claims(benchmark, suite):
    result = benchmark.pedantic(run_headline, args=(suite,),
                                rounds=1, iterations=1)
    report_result(benchmark, result)
